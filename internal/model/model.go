// Package model holds the calibrated performance model of the paper's two
// clusters: per-function service times for the 17 Table-I workloads on ARM
// (BeagleBone Black) and x86 (QEMU microVM) workers, payload sizes, CPU
// demand fractions, and the paper's published aggregate results.
//
// We cannot re-measure the original hardware, so the free parameters here
// are fitted to everything the paper reports (see DESIGN.md §4):
//
//   - 10 SBCs sustain 200.6 func/min; 6 VMs sustain 211.7 func/min, where
//     every job cycle includes the worker-OS boot (1.51 s ARM / 0.96 s x86).
//   - Of the 17 functions, MicroFaaS runs exactly 4 faster than the
//     conventional cluster and 9 more at better than half its speed
//     (Sec V). The fast four are the small-payload, chatty KV and MQ
//     functions, where the microVMs' bridged-virtio per-round-trip penalty
//     outweighs the x86 cores' compute advantage; the slowest four are the
//     crypto/hash kernels and the bulk COSGet download (Fast Ethernet).
//   - The conventional cluster costs 32.0 J/function at 6 VMs and peaks at
//     ≈16.1 J/function when VMs saturate the 12-core server (Fig 4).
//   - The MicroFaaS cluster costs 5.7 J/function (5.6× better).
//
// The calibration test in this package recomputes all aggregates from the
// tables and fails if any drifts outside tolerance, so the tables cannot
// silently decay.
package model

import (
	"fmt"
	"time"

	"microfaas/internal/bootos"
	"microfaas/internal/netsim"
)

// Platform aliases the boot model's platform type: workers are either the
// ARM SBC or the x86 microVM.
type Platform = bootos.Platform

// Re-exported for callers that only import model.
const (
	ARM = bootos.ARM
	X86 = bootos.X86
)

// Class groups Table I's two workload families.
type Class int

const (
	// CPUBound covers the "CPU- or RAM-bound" column of Table I.
	CPUBound Class = iota
	// NetworkBound covers the "Network-bound" column.
	NetworkBound
)

func (c Class) String() string {
	if c == CPUBound {
		return "cpu-bound"
	}
	return "network-bound"
}

// Service names for FunctionSpec.Service.
const (
	ServiceNone     = ""
	ServiceKVStore  = "kvstore"
	ServiceSQLStore = "sqlstore"
	ServiceObjStore = "objstore"
	ServiceMQ       = "mq"
)

// FunctionSpec describes one Table-I workload function's calibrated
// performance model.
type FunctionSpec struct {
	// Name matches Table I (e.g. "CascSHA").
	Name string
	// Class is CPU/RAM-bound or network-bound.
	Class Class
	// Description is the Table-I description.
	Description string
	// Service is the backing service the function talks to ("" for none).
	Service string
	// WorkARM/WorkX86 are the pure compute portions of execution.
	WorkARM, WorkX86 time.Duration
	// CPUFrac is the share of compute time that loads the CPU (the rest is
	// waiting on the backing service); it feeds the rack server's
	// contention model.
	CPUFrac float64
	// InputBytes/OutputBytes are the OP→worker argument payload and the
	// worker→OP result payload.
	InputBytes, OutputBytes int
	// ServiceBytes is bulk data moved to or from the backing service
	// during execution (e.g. the COSGet object download).
	ServiceBytes int
	// ServiceRTTs counts application-level round trips to the backing
	// service during execution (protocol chatter).
	ServiceRTTs int
	// FromFunctionBench marks the Table-I asterisk: adapted from or
	// inspired by FunctionBench.
	FromFunctionBench bool
}

// handshakeRTTs is the per-invocation OP↔worker protocol chatter: TCP
// connect, job header, result acknowledgement.
const handshakeRTTs = 3

// Protocol-handling cost on the worker (MicroPython parsing and encoding
// the invocation payloads): a fixed base plus a per-KiB term.
const (
	overheadBaseARM  = 40 * time.Millisecond
	overheadBaseX86  = 15 * time.Millisecond
	overheadPerKBARM = 250 * time.Microsecond
	overheadPerKBX86 = 80 * time.Microsecond
)

// Work returns the platform's pure-compute execution time.
func (s FunctionSpec) Work(p Platform) time.Duration {
	if p == ARM {
		return s.WorkARM
	}
	return s.WorkX86
}

// ExecTime is the function's "Working" time in Fig 3's terms: compute plus
// backing-service transfers and round trips over the worker's link.
func (s FunctionSpec) ExecTime(p Platform, link netsim.Link) time.Duration {
	d := s.Work(p)
	if s.ServiceBytes > 0 {
		d += link.TransferTime(s.ServiceBytes)
	}
	if s.ServiceRTTs > 0 {
		d += link.RoundTrips(s.ServiceRTTs)
	}
	return d
}

// overheadWork is the CPU-bound protocol handling portion of Overhead.
func (s FunctionSpec) overheadWork(p Platform) time.Duration {
	kb := float64(s.InputBytes+s.OutputBytes) / 1024
	if p == ARM {
		return overheadBaseARM + time.Duration(kb*float64(overheadPerKBARM))
	}
	return overheadBaseX86 + time.Duration(kb*float64(overheadPerKBX86))
}

// OverheadTime is Fig 3's "Overhead": receiving the function input and
// returning the result over the network, including the worker-side protocol
// handling and the OP↔worker handshake.
func (s FunctionSpec) OverheadTime(p Platform, link netsim.Link) time.Duration {
	return s.overheadWork(p) +
		link.RoundTrips(handshakeRTTs) +
		link.TransferTime(s.InputBytes) +
		link.TransferTime(s.OutputBytes)
}

// TotalTime is ExecTime + OverheadTime: the per-invocation runtime Fig 3
// reports (excluding the reboot, which Fig 3 does not chart).
func (s FunctionSpec) TotalTime(p Platform, link netsim.Link) time.Duration {
	return s.ExecTime(p, link) + s.OverheadTime(p, link)
}

// CPUTime is the CPU demand of one invocation (excluding boot): the
// CPU-loaded share of compute plus all protocol handling. The rack server's
// processor-sharing model schedules this demand across its cores.
func (s FunctionSpec) CPUTime(p Platform) time.Duration {
	return time.Duration(float64(s.Work(p))*s.CPUFrac) + s.overheadWork(p)
}

// DefaultWorkerLink returns the worker's last-hop link in the paper's
// evaluation: bare-metal Fast Ethernet for the SBC, bridged virtio on the
// host's gigabit NIC for the microVM.
func DefaultWorkerLink(p Platform) netsim.Link {
	if p == ARM {
		return netsim.FastEthernet()
	}
	return netsim.BridgedVirtio()
}

// ms converts integer milliseconds, keeping the table readable.
func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

// functions is the calibrated Table-I workload suite. Ordering matches
// Table I (CPU/RAM-bound column first).
var functions = []FunctionSpec{
	{Name: "FloatOps", Class: CPUBound, Description: "floating-point trigonometric operations",
		WorkARM: ms(1480), WorkX86: ms(880), CPUFrac: 0.97,
		InputBytes: 256, OutputBytes: 128, FromFunctionBench: true},
	{Name: "CascSHA", Class: CPUBound, Description: "cascading SHA256 hash calculations",
		WorkARM: ms(4150), WorkX86: ms(1500), CPUFrac: 0.97,
		InputBytes: 1024, OutputBytes: 64},
	{Name: "CascMD5", Class: CPUBound, Description: "cascading MD5 hash calculations",
		WorkARM: ms(3400), WorkX86: ms(1260), CPUFrac: 0.97,
		InputBytes: 1024, OutputBytes: 64},
	{Name: "MatMul", Class: CPUBound, Description: "large random matrix multiplication",
		WorkARM: ms(2650), WorkX86: ms(1660), CPUFrac: 0.97,
		InputBytes: 512, OutputBytes: 128, FromFunctionBench: true},
	{Name: "HTMLGen", Class: CPUBound, Description: "dynamically generate and serve HTML",
		WorkARM: ms(920), WorkX86: ms(600), CPUFrac: 0.97,
		InputBytes: 512, OutputBytes: 64 << 10},
	{Name: "AES128", Class: CPUBound, Description: "cascading AES128 encryption/decryption",
		WorkARM: ms(4450), WorkX86: ms(1700), CPUFrac: 0.97,
		InputBytes: 4096, OutputBytes: 128, FromFunctionBench: true},
	{Name: "Decompress", Class: CPUBound, Description: "extract a DEFLATE-compressed string",
		WorkARM: ms(1215), WorkX86: ms(720), CPUFrac: 0.97,
		InputBytes: 256 << 10, OutputBytes: 256, FromFunctionBench: true},
	{Name: "RegExSearch", Class: CPUBound, Description: "find all regular expr. matches in input",
		WorkARM: ms(1650), WorkX86: ms(1050), CPUFrac: 0.97,
		InputBytes: 128 << 10, OutputBytes: 4096},
	{Name: "RegExMatch", Class: CPUBound, Description: "determine if input matches regular expr.",
		WorkARM: ms(730), WorkX86: ms(480), CPUFrac: 0.97,
		InputBytes: 64 << 10, OutputBytes: 64},

	{Name: "RedisInsert", Class: NetworkBound, Description: "insert Redis key-value record",
		Service: ServiceKVStore, WorkARM: ms(120), WorkX86: ms(45), CPUFrac: 0.30,
		InputBytes: 512, OutputBytes: 64, ServiceBytes: 1024, ServiceRTTs: 50},
	{Name: "RedisUpdate", Class: NetworkBound, Description: "update Redis key-value record",
		Service: ServiceKVStore, WorkARM: ms(130), WorkX86: ms(50), CPUFrac: 0.30,
		InputBytes: 512, OutputBytes: 64, ServiceBytes: 1024, ServiceRTTs: 50},
	{Name: "SQLSelect", Class: NetworkBound, Description: "query our PostgreSQL server using SELECT",
		Service: ServiceSQLStore, WorkARM: ms(500), WorkX86: ms(295), CPUFrac: 0.45,
		InputBytes: 256, OutputBytes: 8192, ServiceBytes: 8192, ServiceRTTs: 30},
	{Name: "SQLUpdate", Class: NetworkBound, Description: "query our PostgreSQL server using UPDATE",
		Service: ServiceSQLStore, WorkARM: ms(560), WorkX86: ms(335), CPUFrac: 0.45,
		InputBytes: 256, OutputBytes: 64, ServiceBytes: 1024, ServiceRTTs: 30},
	{Name: "COSGet", Class: NetworkBound, Description: "download from MinIO cloud object store",
		Service: ServiceObjStore, WorkARM: ms(300), WorkX86: ms(150), CPUFrac: 0.25,
		InputBytes: 256, OutputBytes: 256, ServiceBytes: 8 << 20, ServiceRTTs: 8,
		FromFunctionBench: true},
	{Name: "COSPut", Class: NetworkBound, Description: "upload to MinIO cloud object store",
		Service: ServiceObjStore, WorkARM: ms(900), WorkX86: ms(620), CPUFrac: 0.80,
		InputBytes: 512, OutputBytes: 128, ServiceBytes: 256 << 10, ServiceRTTs: 6,
		FromFunctionBench: true},
	{Name: "MQProduce", Class: NetworkBound, Description: "send message to Kafka topic",
		Service: ServiceMQ, WorkARM: ms(140), WorkX86: ms(55), CPUFrac: 0.30,
		InputBytes: 1024, OutputBytes: 64, ServiceBytes: 2048, ServiceRTTs: 55},
	{Name: "MQConsume", Class: NetworkBound, Description: "receive message from Kafka topic",
		Service: ServiceMQ, WorkARM: ms(150), WorkX86: ms(60), CPUFrac: 0.30,
		InputBytes: 256, OutputBytes: 1024, ServiceBytes: 2048, ServiceRTTs: 55},
}

// Functions returns the 17-function Table-I workload suite (a copy: callers
// may mutate freely, e.g. for ablations).
func Functions() []FunctionSpec {
	out := make([]FunctionSpec, len(functions))
	copy(out, functions)
	return out
}

// FunctionByName returns the named spec.
func FunctionByName(name string) (FunctionSpec, error) {
	for _, f := range functions {
		if f.Name == name {
			return f, nil
		}
	}
	return FunctionSpec{}, fmt.Errorf("model: unknown function %q", name)
}

// Cluster-scale constants from Sec IV/V.
const (
	// SBCCount is the MicroFaaS evaluation cluster size.
	SBCCount = 10
	// VMCount is the throughput-matched conventional cluster size.
	VMCount = 6
	// ServerCores is the Opteron 6172's core count.
	ServerCores = 12
)

// Published aggregate results used as calibration targets.
const (
	// PaperSBCThroughput is func/min for the 10-SBC cluster.
	PaperSBCThroughput = 200.6
	// PaperVMThroughput is func/min for the 6-VM cluster.
	PaperVMThroughput = 211.7
	// PaperMicroFaaSJoulesPerFunc is the measured MicroFaaS energy cost.
	PaperMicroFaaSJoulesPerFunc = 5.7
	// PaperConventionalJoulesPerFunc is the 6-VM cluster's energy cost.
	PaperConventionalJoulesPerFunc = 32.0
	// PaperPeakConventionalJoulesPerFunc is the conventional cluster's
	// best efficiency with the server saturated by VMs (Fig 4).
	PaperPeakConventionalJoulesPerFunc = 16.1
	// PaperEnergyEfficiencyGain is the headline 5.6x.
	PaperEnergyEfficiencyGain = 5.6
)

// MeanJobTime is the mean per-invocation runtime (exec + overhead) across
// the 17-function suite.
func MeanJobTime(p Platform, link netsim.Link) time.Duration {
	var sum time.Duration
	for _, f := range functions {
		sum += f.TotalTime(p, link)
	}
	return sum / time.Duration(len(functions))
}

// MeanCycleTime is the mean full job cycle: boot (every MicroFaaS job
// begins on a freshly-booted worker; the throughput-matched conventional
// cluster runs the same run-to-completion worker OS) plus the job itself.
func MeanCycleTime(p Platform, link netsim.Link) time.Duration {
	return bootos.BootTime(p) + MeanJobTime(p, link)
}

// ClusterThroughput is the steady-state functions-per-minute of n
// always-busy workers.
func ClusterThroughput(n int, p Platform, link netsim.Link) float64 {
	cycle := MeanCycleTime(p, link).Seconds()
	return float64(n) * 60 / cycle
}

// MeanCPUPerJob is the mean CPU demand of one full job cycle, including
// the boot's CPU time — the quantity that determines where added VMs
// saturate the rack server's cores.
func MeanCPUPerJob(p Platform) time.Duration {
	var sum time.Duration
	for _, f := range functions {
		sum += f.CPUTime(p)
	}
	mean := sum / time.Duration(len(functions))
	bootCPU := time.Duration(float64(bootos.BootTime(p)) * bootos.BootCPUFraction(p))
	return bootCPU + mean
}

// VMUtilization is the fraction of the rack server's cores demanded by n
// always-busy VMs (may exceed 1, meaning saturation).
func VMUtilization(n int) float64 {
	link := DefaultWorkerLink(X86)
	perVM := float64(MeanCPUPerJob(X86)) / float64(MeanCycleTime(X86, link))
	return float64(n) * perVM / ServerCores
}

// SaturatedThroughput is the conventional cluster's core-limited ceiling in
// functions per minute (Fig 4's plateau).
func SaturatedThroughput() float64 {
	return float64(ServerCores) / MeanCPUPerJob(X86).Seconds() * 60
}
