package model

import (
	"testing"
	"testing/quick"
	"time"

	"microfaas/internal/netsim"
)

// Model invariants that hold for every function on every plausible link —
// the structural sanity the calibration tests (which pin aggregate values)
// don't cover.

func allLinks() []netsim.Link {
	return []netsim.Link{
		netsim.FastEthernet(),
		netsim.GigabitEthernet(),
		netsim.BridgedVirtio(),
	}
}

func TestTotalTimeComposesEverywhere(t *testing.T) {
	for _, p := range []Platform{ARM, X86} {
		for _, link := range allLinks() {
			for _, f := range Functions() {
				if f.TotalTime(p, link) != f.ExecTime(p, link)+f.OverheadTime(p, link) {
					t.Fatalf("%s on %v/%s: total != exec+overhead", f.Name, p, link.Name)
				}
			}
		}
	}
}

func TestFasterLinkNeverSlowsAnything(t *testing.T) {
	fe, ge := netsim.FastEthernet(), netsim.GigabitEthernet()
	for _, p := range []Platform{ARM, X86} {
		for _, f := range Functions() {
			if f.TotalTime(p, ge) > f.TotalTime(p, fe) {
				t.Fatalf("%s on %v: GigE (%v) slower than Fast Ethernet (%v)",
					f.Name, p, f.TotalTime(p, ge), f.TotalTime(p, fe))
			}
		}
	}
}

func TestVirtioPenaltyNeverHelps(t *testing.T) {
	ge, vio := netsim.GigabitEthernet(), netsim.BridgedVirtio()
	for _, f := range Functions() {
		if f.TotalTime(X86, vio) < f.TotalTime(X86, ge) {
			t.Fatalf("%s: bridged virtio faster than bare-metal GigE", f.Name)
		}
	}
}

func TestCPUDemandBounded(t *testing.T) {
	for _, p := range []Platform{ARM, X86} {
		for _, link := range allLinks() {
			for _, f := range Functions() {
				cpu := f.CPUTime(p)
				if cpu <= 0 {
					t.Fatalf("%s on %v: non-positive CPU time", f.Name, p)
				}
				if cpu > f.TotalTime(p, link) {
					t.Fatalf("%s on %v/%s: CPU %v exceeds wall %v",
						f.Name, p, link.Name, cpu, f.TotalTime(p, link))
				}
			}
		}
	}
}

func TestARMNeverOutcomputesX86(t *testing.T) {
	// Pure compute: the 1 GHz Cortex-A8 never beats the Opteron core. (The
	// four total-time wins come from networking, not compute.)
	for _, f := range Functions() {
		if f.WorkARM < f.WorkX86 {
			t.Fatalf("%s: ARM compute %v < x86 %v", f.Name, f.WorkARM, f.WorkX86)
		}
	}
}

func TestOverheadGrowsWithPayloadProperty(t *testing.T) {
	base, err := FunctionByName("FloatOps")
	if err != nil {
		t.Fatal(err)
	}
	link := DefaultWorkerLink(ARM)
	prop := func(extraKB uint16) bool {
		bigger := base
		bigger.InputBytes += int(extraKB) * 1024
		return bigger.OverheadTime(ARM, link) >= base.OverheadTime(ARM, link)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThroughputScalesLinearlyInNodes(t *testing.T) {
	link := DefaultWorkerLink(ARM)
	one := ClusterThroughput(1, ARM, link)
	for _, n := range []int{2, 10, 100, 989} {
		got := ClusterThroughput(n, ARM, link)
		want := one * float64(n)
		if got < want*0.999 || got > want*1.001 {
			t.Fatalf("throughput(%d) = %v, want %v (perfect linearity: no shared resources)", n, got, want)
		}
	}
}

func TestVMUtilizationLinearInVMs(t *testing.T) {
	u1 := VMUtilization(1)
	if u1 <= 0 {
		t.Fatal("single VM demands no CPU")
	}
	for _, n := range []int{2, 6, 12} {
		got := VMUtilization(n)
		if got < u1*float64(n)*0.999 || got > u1*float64(n)*1.001 {
			t.Fatalf("utilization(%d) = %v, want %v", n, got, u1*float64(n))
		}
	}
}

func TestMeanCycleDominatedByBootPlusWork(t *testing.T) {
	// The mean ARM cycle must exceed the boot alone and the mean work alone.
	link := DefaultWorkerLink(ARM)
	cycle := MeanCycleTime(ARM, link)
	if cycle <= MeanJobTime(ARM, link) {
		t.Fatal("cycle does not include the boot")
	}
	if cycle <= 1510*time.Millisecond {
		t.Fatal("cycle shorter than the boot itself")
	}
}
