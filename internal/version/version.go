// Package version pins the build identity reported by the gateway's
// health endpoint and the faasctl client. A constant (rather than VCS
// stamping) keeps builds reproducible and dependency-free; bump it when
// the HTTP or metrics surface changes shape.
package version

// Version identifies this build of the MicroFaaS reproduction.
const Version = "0.2.0"
