// Package tracing is the platform's distributed-tracing layer: a
// dependency-free span model over the cluster clock (virtual in sim mode,
// wall in live mode), a bounded in-memory span store, head-based sampling,
// and exporters for newline-delimited JSON and the Chrome trace_event
// format (loadable in Perfetto / chrome://tracing).
//
// The paper's headline numbers are per-invocation lifecycle
// decompositions — 5.7 J/function, the 1.51 s ARM boot, Fig. 1's
// boot-phase breakdown — so a trace here is exactly one invocation's
// lifecycle: a root span covering submit→settle and one child span per
// typed phase (submit, queue, dispatch, boot, exec, settle, reboot, plus
// retry/fault annotations). Worker-side boot and exec spans carry the
// joules their phase consumed, computed from power.Meter snapshots at the
// span boundaries, so a trace's phase energies sum to the invocation's
// metered energy the same way its phase latencies sum to the end-to-end
// latency (see Summarize).
//
// Everything is nil-safe: a nil *Tracer turns every method into a no-op
// and StartTrace returns the invalid Context, so instrumented code paths
// cost one nil check when tracing is disabled. The tracer never draws
// randomness and never schedules events — sampling is a hash of the
// deterministic trace id — so enabling it leaves seeded simulation runs
// bit-identical.
package tracing

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"
)

// TraceID identifies one invocation's trace. Zero is the invalid id.
type TraceID uint64

// SpanID identifies one span within a trace. Zero is the invalid id.
type SpanID uint64

// String renders the id as 16 hex digits (the W3C traceparent style,
// truncated to 64 bits).
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// String renders the id as 16 hex digits.
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseTraceID parses the 16-hex-digit form produced by TraceID.String.
func ParseTraceID(s string) (TraceID, error) {
	n, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("tracing: bad trace id %q: %w", s, err)
	}
	return TraceID(n), nil
}

// MarshalJSON renders the id as a hex string: 64-bit ids do not survive
// JSON's float64 numbers.
func (id TraceID) MarshalJSON() ([]byte, error) { return []byte(`"` + id.String() + `"`), nil }

// UnmarshalJSON parses the hex-string form.
func (id *TraceID) UnmarshalJSON(b []byte) error {
	s, err := strconv.Unquote(string(b))
	if err != nil {
		return fmt.Errorf("tracing: bad trace id %s", b)
	}
	parsed, err := ParseTraceID(s)
	if err != nil {
		return err
	}
	*id = parsed
	return nil
}

// MarshalJSON renders the id as a hex string.
func (id SpanID) MarshalJSON() ([]byte, error) { return []byte(`"` + id.String() + `"`), nil }

// UnmarshalJSON parses the hex-string form.
func (id *SpanID) UnmarshalJSON(b []byte) error {
	s, err := strconv.Unquote(string(b))
	if err != nil {
		return fmt.Errorf("tracing: bad span id %s", b)
	}
	n, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return fmt.Errorf("tracing: bad span id %q: %w", s, err)
	}
	*id = SpanID(n)
	return nil
}

// Phase types the lifecycle position a span covers. The first seven are
// the invocation's ordered phases; retry and fault are annotations a
// failed attempt adds.
type Phase string

const (
	// PhaseInvocation is the root span: the whole submit→settle lifecycle.
	PhaseInvocation Phase = "invocation"
	// PhaseSubmit marks the OP accepting the job (zero-length).
	PhaseSubmit Phase = "submit"
	// PhaseQueue covers the wait on a worker's queue, per attempt.
	PhaseQueue Phase = "queue"
	// PhaseDispatch marks the OP handing the job to its worker.
	PhaseDispatch Phase = "dispatch"
	// PhaseBoot covers the worker's power-on/OS-boot (cold starts only).
	PhaseBoot Phase = "boot"
	// PhaseExec covers protocol overhead plus function execution.
	PhaseExec Phase = "exec"
	// PhaseSettle marks the OP recording the attempt's outcome.
	PhaseSettle Phase = "settle"
	// PhaseReboot marks the worker's post-job power transition.
	PhaseReboot Phase = "reboot"
	// PhaseRetry covers the backoff wait between a failed attempt and its
	// re-queue.
	PhaseRetry Phase = "retry"
	// PhaseFault annotates a failed or timed-out attempt (zero-length).
	PhaseFault Phase = "fault"
	// PhaseSteal marks a queued job migrating to another control-plane
	// shard (zero-length; the job's queue span keeps covering the whole
	// wait, so phase latencies still telescope to end-to-end latency).
	PhaseSteal Phase = "steal"
	// PhaseAlert annotates an SLO burn-rate page transition (zero-length,
	// recorded by internal/tsdb's SLO engine, not part of any invocation's
	// lifecycle — alert traces carry the rule name as their function).
	PhaseAlert Phase = "alert"
	// PhaseThrottle covers the hold a submission serves before entering a
	// queue because its function's energy budget is exhausted.
	PhaseThrottle Phase = "throttle"
)

// PhaseOrder returns the canonical display order of the non-root phases.
func PhaseOrder() []Phase {
	return []Phase{PhaseSubmit, PhaseThrottle, PhaseQueue, PhaseDispatch,
		PhaseBoot, PhaseExec, PhaseSettle, PhaseRetry, PhaseFault, PhaseSteal,
		PhaseReboot}
}

// Context is the propagated trace reference: which trace a span belongs
// to and which span is its parent. The zero Context is invalid and makes
// every recording call a no-op, so untraced jobs cost nothing.
type Context struct {
	// Trace is the owning trace's id (0 = invalid/untraced).
	Trace TraceID `json:"trace"`
	// Span is the parent span new children attach under.
	Span SpanID `json:"span"`
}

// Valid reports whether the context refers to a real trace.
func (c Context) Valid() bool { return c.Trace != 0 }

// Wire returns the context's wire-protocol form: hex trace and span ids,
// both empty when the context is invalid (untraced jobs add no bytes to
// the request frame).
func (c Context) Wire() (traceID, spanID string) {
	if !c.Valid() {
		return "", ""
	}
	return c.Trace.String(), c.Span.String()
}

// ContextFromWire parses the wire form back into a Context; malformed or
// empty input yields the invalid Context (a peer without tracing simply
// doesn't record).
func ContextFromWire(traceID, spanID string) Context {
	if traceID == "" {
		// The common untraced case: skip the parse so it costs nothing
		// (ParseTraceID would build and discard an error per call).
		return Context{}
	}
	tr, err := ParseTraceID(traceID)
	if err != nil {
		return Context{}
	}
	var c Context
	c.Trace = tr
	if sp, err := strconv.ParseUint(spanID, 16, 64); err == nil {
		c.Span = SpanID(sp)
	}
	return c
}

// Span is one recorded lifecycle interval. Start and End are offsets on
// the cluster clock; EnergyJ is the metered joules the phase consumed
// (boot and exec spans on metered workers; zero elsewhere).
type Span struct {
	// Trace is the owning trace's id.
	Trace TraceID `json:"trace"`
	// ID is the span's trace-unique id.
	ID SpanID `json:"id"`
	// Parent is the parent span's id (0 for root spans).
	Parent SpanID `json:"parent,omitempty"`
	// Phase classifies the lifecycle interval (queue, boot, exec, ...).
	Phase Phase `json:"phase"`
	// Name is a free-form label (root spans: the function name).
	Name string `json:"name,omitempty"`
	// Job is the job id the span belongs to (0 for non-job spans).
	Job int64 `json:"job,omitempty"`
	// Function names the workload function being traced.
	Function string `json:"function,omitempty"`
	// Worker names the worker the phase ran on (empty off-worker).
	Worker string `json:"worker,omitempty"`
	// Shard names the control-plane shard that recorded the span (empty
	// on unsharded clusters and worker-side spans, whose worker ids
	// already carry the shard prefix).
	Shard string `json:"shard,omitempty"`
	// Attempt is the retry ordinal the span belongs to (0 = first).
	Attempt int `json:"attempt"`
	// Start is the span's opening offset on the cluster clock.
	Start time.Duration `json:"start_ns"`
	// End is the span's closing offset on the cluster clock.
	End time.Duration `json:"end_ns"`
	// EnergyJ is the metered joules the phase consumed.
	EnergyJ float64 `json:"energy_j,omitempty"`
	// Detail annotates the span ("cold"/"warm"/"wake" boots, fault kinds).
	Detail string `json:"detail,omitempty"`
	// Err carries the failure that ended the span, empty on success.
	Err string `json:"err,omitempty"`
}

// Duration is the span's length on the cluster clock.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Trace is one committed invocation trace: the root span plus its child
// phase spans in recording order.
type Trace struct {
	// ID is the trace id (also stamped on every span).
	ID TraceID `json:"trace"`
	// Root is the invocation-level span bracketing the whole job.
	Root Span `json:"root"`
	// Spans holds the child spans in the order they were recorded.
	Spans []Span `json:"spans"`
}

// Config tunes a Tracer.
type Config struct {
	// Seed decorrelates trace ids across tracers; ids (and therefore the
	// hash-based sampling decisions) are a pure function of (Seed, ordinal),
	// so seeded sim runs sample deterministically.
	Seed int64
	// SampleRate is the head-sampled fraction of traces in [0,1]. Zero
	// means sample everything (the default); negative means sample nothing
	// except what the error/slow overrides keep.
	SampleRate float64
	// DropErrors disables the always-sample-errors override (by default a
	// trace whose root ends with an error is kept regardless of rate).
	DropErrors bool
	// SlowThreshold, when positive, keeps every trace at least this slow
	// regardless of the sampling rate (tail-latency forensics).
	SlowThreshold time.Duration
	// MaxTraces bounds the committed-trace ring (default 4096); the oldest
	// committed trace is evicted when full.
	MaxTraces int
	// MaxActive bounds the in-flight staging area (default 4096); traces
	// started beyond it are dropped at birth.
	MaxActive int
	// MaxSpans bounds one trace's child spans (default 512); spans past
	// the cap are dropped and counted.
	MaxSpans int
}

// Stats counts a tracer's retention behaviour, for loss reporting.
type Stats struct {
	// Committed traces currently retained; Active traces still open.
	Committed int `json:"committed"`
	// Active counts traces started but not yet committed.
	Active int `json:"active"`
	// Unsampled traces discarded at commit by the head-sampling decision;
	// Evicted committed traces overwritten by the ring; Overflow traces
	// dropped at birth by the MaxActive bound; TruncatedSpans child spans
	// dropped by the per-trace MaxSpans bound.
	Unsampled int64 `json:"unsampled"`
	// Evicted counts committed traces overwritten by the ring buffer.
	Evicted int64 `json:"evicted"`
	// Overflow counts traces dropped at birth by the MaxActive bound.
	Overflow int64 `json:"overflow"`
	// TruncatedSpans counts child spans dropped by the MaxSpans bound.
	TruncatedSpans int64 `json:"truncated_spans"`
}

// Tracer records spans into a bounded in-memory store. Safe for
// concurrent use; a nil *Tracer no-ops everywhere.
type Tracer struct {
	cfg Config

	mu        sync.Mutex
	nextTrace uint64
	nextSpan  uint64
	active    map[TraceID]*activeTrace
	// done is a ring of committed traces, oldest first at (head) when full.
	done  []Trace
	head  int
	count int
	stats Stats
}

// activeTrace is a staged, not-yet-committed trace.
type activeTrace struct {
	root    Span
	spans   []Span
	sampled bool
}

// New returns a tracer with default settings: sample everything, keep
// errors and default bounds.
func New() *Tracer { return NewWithConfig(Config{}) }

// NewWithConfig returns a tracer with the given settings.
func NewWithConfig(cfg Config) *Tracer {
	if cfg.MaxTraces <= 0 {
		cfg.MaxTraces = 4096
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 4096
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = 512
	}
	return &Tracer{
		cfg:    cfg,
		active: make(map[TraceID]*activeTrace),
		done:   make([]Trace, 0, cfg.MaxTraces),
	}
}

// splitmix64 is the SplitMix64 finalizer: a bijective mixer whose output
// passes BigCrush, shared with the experiment runner's seed derivation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sampled is the head-sampling decision: a pure function of the trace id,
// so it is deterministic for seeded runs and consistent across processes
// that share the id — no RNG draw, no coordination.
func (t *Tracer) sampled(id TraceID) bool {
	rate := t.cfg.SampleRate
	if rate == 0 {
		return true
	}
	if rate < 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	// Map the id's hash onto [0,1) with 53 usable bits.
	u := float64(splitmix64(uint64(id))>>11) / float64(uint64(1)<<53)
	return u < rate
}

// StartTrace opens a new trace whose root span begins at cluster-clock
// offset at, and returns the context child spans parent under. The root
// stays open until EndTrace. Returns the invalid Context (making all
// downstream recording no-op) when the tracer is nil or the staging area
// is full.
func (t *Tracer) StartTrace(name string, job int64, function string, at time.Duration) Context {
	if t == nil {
		return Context{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.active) >= t.cfg.MaxActive {
		t.stats.Overflow++
		return Context{}
	}
	t.nextTrace++
	id := TraceID(splitmix64(uint64(t.cfg.Seed) ^ splitmix64(t.nextTrace)))
	if id == 0 { // zero is the invalid id; remap the 1-in-2^64 collision
		id = 1
	}
	t.nextSpan++
	root := Span{
		Trace:    id,
		ID:       SpanID(t.nextSpan),
		Phase:    PhaseInvocation,
		Name:     name,
		Job:      job,
		Function: function,
		Start:    at,
		End:      at,
	}
	t.active[id] = &activeTrace{root: root, sampled: t.sampled(id)}
	return Context{Trace: id, Span: root.ID}
}

// Record appends one completed child span to the context's trace. The
// span's Trace, ID, and (when unset) Parent fields are filled in. No-op
// when the tracer is nil, the context invalid, or the trace unknown.
func (t *Tracer) Record(ctx Context, s Span) {
	if t == nil || !ctx.Valid() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	at, ok := t.active[ctx.Trace]
	if !ok {
		return
	}
	if len(at.spans) >= t.cfg.MaxSpans {
		t.stats.TruncatedSpans++
		return
	}
	t.nextSpan++
	s.Trace = ctx.Trace
	s.ID = SpanID(t.nextSpan)
	if s.Parent == 0 {
		s.Parent = ctx.Span
	}
	at.spans = append(at.spans, s)
}

// EndTrace closes the context's root span at cluster-clock offset at and
// commits or drops the trace: it is kept when head-sampled, when errMsg
// is non-empty (unless DropErrors), or when at least SlowThreshold long.
func (t *Tracer) EndTrace(ctx Context, at time.Duration, worker, errMsg string) {
	if t == nil || !ctx.Valid() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.active[ctx.Trace]
	if !ok {
		return
	}
	delete(t.active, ctx.Trace)
	tr.root.End = at
	tr.root.Worker = worker
	tr.root.Err = errMsg
	for _, s := range tr.spans {
		if s.Attempt > tr.root.Attempt {
			tr.root.Attempt = s.Attempt
		}
	}
	keep := tr.sampled ||
		(errMsg != "" && !t.cfg.DropErrors) ||
		(t.cfg.SlowThreshold > 0 && tr.root.Duration() >= t.cfg.SlowThreshold)
	if !keep {
		t.stats.Unsampled++
		return
	}
	t.commitLocked(Trace{ID: ctx.Trace, Root: tr.root, Spans: tr.spans})
}

// commitLocked appends to the ring, evicting the oldest committed trace
// when full. Caller holds t.mu.
func (t *Tracer) commitLocked(tr Trace) {
	if t.count < t.cfg.MaxTraces {
		t.done = append(t.done, tr)
		t.count++
		return
	}
	t.done[t.head] = tr
	t.head = (t.head + 1) % t.cfg.MaxTraces
	t.stats.Evicted++
}

// Len returns the number of committed traces retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Stats returns the tracer's retention counters.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stats
	st.Committed = t.count
	st.Active = len(t.active)
	return st
}

// Traces returns a copy of the committed traces, oldest first.
func (t *Tracer) Traces() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, 0, t.count)
	for i := 0; i < t.count; i++ {
		out = append(out, t.done[(t.head+i)%len(t.done)])
	}
	return out
}

// Get returns the committed trace with the given id.
func (t *Tracer) Get(id TraceID) (Trace, bool) {
	if t == nil {
		return Trace{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 0; i < t.count; i++ {
		if tr := t.done[(t.head+i)%len(t.done)]; tr.ID == id {
			return tr, true
		}
	}
	return Trace{}, false
}

// ByJob returns the newest committed trace for the given job id.
func (t *Tracer) ByJob(job int64) (Trace, bool) {
	if t == nil {
		return Trace{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := t.count - 1; i >= 0; i-- {
		if tr := t.done[(t.head+i)%len(t.done)]; tr.Root.Job == job {
			return tr, true
		}
	}
	return Trace{}, false
}

// Slowest returns up to n committed traces ordered by descending
// end-to-end duration (ties broken oldest first, so the order is
// deterministic for seeded runs).
func (t *Tracer) Slowest(n int) []Trace {
	all := t.Traces()
	sort.SliceStable(all, func(i, j int) bool {
		return all[i].Root.Duration() > all[j].Root.Duration()
	})
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}
