package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteNDJSON writes one Span per line (root first, then children in
// recording order), newline-delimited — the grep/jq-friendly dump format.
func WriteNDJSON(w io.Writer, traces []Trace) error {
	enc := json.NewEncoder(w)
	for _, tr := range traces {
		if err := enc.Encode(tr.Root); err != nil {
			return err
		}
		for _, s := range tr.Spans {
			if err := enc.Encode(s); err != nil {
				return err
			}
		}
	}
	return nil
}

// chromeEvent is one entry in the Chrome trace_event JSON array. Field
// order follows the trace_event spec's examples; ts/dur are microseconds.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`
	Dur   *float64          `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// chromeTrace is the trace_event "JSON Object Format" container.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// micros converts a cluster-clock offset to trace_event microseconds.
func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChromeTrace writes the traces in Chrome trace_event JSON object
// format, loadable in Perfetto or chrome://tracing. Each trace's root
// span and its orchestrator-side phases (submit, queue, dispatch, settle,
// retry, fault) render on the "orchestrator" track (tid 0); worker-side
// phases (boot, exec, reboot) render on a per-worker track. All events
// are complete events ("ph":"X") with microsecond timestamps, preceded by
// metadata events naming the process and threads. Output is deterministic
// for a given input: tracks are assigned in sorted worker-id order and
// args maps serialize in sorted key order (encoding/json sorts map keys).
func WriteChromeTrace(w io.Writer, traces []Trace) error {
	// Assign tids: 0 = orchestrator, then sorted worker ids.
	workers := map[string]int{}
	var ids []string
	for _, tr := range traces {
		for _, s := range tr.Spans {
			if s.Worker != "" && workerPhase(s.Phase) {
				if _, ok := workers[s.Worker]; !ok {
					workers[s.Worker] = 0
					ids = append(ids, s.Worker)
				}
			}
		}
	}
	sort.Strings(ids)
	for i, id := range ids {
		workers[id] = i + 1
	}

	events := make([]chromeEvent, 0, 2+len(ids))
	events = append(events,
		chromeEvent{Name: "process_name", Phase: "M", PID: 1, TID: 0,
			Args: map[string]string{"name": "microfaas"}},
		chromeEvent{Name: "thread_name", Phase: "M", PID: 1, TID: 0,
			Args: map[string]string{"name": "orchestrator"}},
	)
	for _, id := range ids {
		events = append(events, chromeEvent{Name: "thread_name", Phase: "M",
			PID: 1, TID: workers[id], Args: map[string]string{"name": id}})
	}

	for _, tr := range traces {
		events = append(events, completeEvent(tr.Root, 0))
		for _, s := range tr.Spans {
			tid := 0
			if s.Worker != "" && workerPhase(s.Phase) {
				tid = workers[s.Worker]
			}
			events = append(events, completeEvent(s, tid))
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// workerPhase reports whether the phase executes on a worker node (and so
// renders on the worker's track rather than the orchestrator's).
func workerPhase(p Phase) bool {
	return p == PhaseBoot || p == PhaseExec || p == PhaseReboot
}

// completeEvent renders one span as a trace_event complete event.
func completeEvent(s Span, tid int) chromeEvent {
	name := string(s.Phase)
	if s.Phase == PhaseInvocation {
		name = fmt.Sprintf("%s #%d", s.Function, s.Job)
	}
	args := map[string]string{
		"trace":   s.Trace.String(),
		"attempt": fmt.Sprintf("%d", s.Attempt),
	}
	if s.Function != "" {
		args["function"] = s.Function
	}
	if s.Worker != "" {
		args["worker"] = s.Worker
	}
	if s.EnergyJ != 0 {
		args["energy_j"] = fmt.Sprintf("%.6f", s.EnergyJ)
	}
	if s.Detail != "" {
		args["detail"] = s.Detail
	}
	if s.Err != "" {
		args["err"] = s.Err
	}
	dur := micros(s.End - s.Start)
	return chromeEvent{
		Name:  name,
		Cat:   string(s.Phase),
		Phase: "X",
		TS:    micros(s.Start),
		Dur:   &dur,
		PID:   1,
		TID:   tid,
		Args:  args,
	}
}
