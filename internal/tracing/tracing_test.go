package tracing

import (
	"encoding/json"
	"testing"
	"time"
)

func TestIDMarshalRoundTrip(t *testing.T) {
	id := TraceID(0xdeadbeef01020304)
	b, err := json.Marshal(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"deadbeef01020304"` {
		t.Fatalf("marshal = %s", b)
	}
	var back TraceID
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Fatalf("round trip: %x != %x", back, id)
	}
	parsed, err := ParseTraceID(id.String())
	if err != nil || parsed != id {
		t.Fatalf("ParseTraceID(%q) = %x, %v", id.String(), parsed, err)
	}
	if _, err := ParseTraceID("not-hex"); err == nil {
		t.Fatal("ParseTraceID accepted garbage")
	}

	var sp SpanID
	if err := json.Unmarshal([]byte(`"00000000000000ff"`), &sp); err != nil || sp != 255 {
		t.Fatalf("span unmarshal = %v, %v", sp, err)
	}
}

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	ctx := tr.StartTrace("f", 1, "f", 0)
	if ctx.Valid() {
		t.Fatal("nil tracer returned a valid context")
	}
	tr.Record(ctx, Span{Phase: PhaseQueue})
	tr.EndTrace(ctx, time.Second, "w", "")
	if tr.Len() != 0 || len(tr.Traces()) != 0 {
		t.Fatal("nil tracer retained traces")
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("nil tracer Get succeeded")
	}
	if _, ok := tr.ByJob(1); ok {
		t.Fatal("nil tracer ByJob succeeded")
	}
	if st := tr.Stats(); st != (Stats{}) {
		t.Fatalf("nil tracer stats = %+v", st)
	}
	if got := tr.Slowest(3); len(got) != 0 {
		t.Fatalf("nil tracer Slowest = %v", got)
	}
}

func TestInvalidContextNoOps(t *testing.T) {
	tr := New()
	tr.Record(Context{}, Span{Phase: PhaseQueue})
	tr.EndTrace(Context{}, time.Second, "", "")
	if tr.Len() != 0 {
		t.Fatal("invalid context committed a trace")
	}
}

func TestRecordAndLookup(t *testing.T) {
	tr := New()
	ctx := tr.StartTrace("CascSHA", 7, "CascSHA", 10*time.Millisecond)
	if !ctx.Valid() {
		t.Fatal("StartTrace returned invalid context")
	}
	tr.Record(ctx, Span{Phase: PhaseQueue, Start: 10 * time.Millisecond, End: 20 * time.Millisecond})
	tr.Record(ctx, Span{Phase: PhaseExec, Worker: "sbc-001", Start: 20 * time.Millisecond, End: 50 * time.Millisecond, EnergyJ: 0.5, Attempt: 1})
	tr.EndTrace(ctx, 50*time.Millisecond, "sbc-001", "")

	got, ok := tr.Get(ctx.Trace)
	if !ok {
		t.Fatal("Get missed committed trace")
	}
	if got.Root.Job != 7 || got.Root.Function != "CascSHA" || got.Root.Worker != "sbc-001" {
		t.Fatalf("root = %+v", got.Root)
	}
	if got.Root.Duration() != 40*time.Millisecond {
		t.Fatalf("root duration = %v", got.Root.Duration())
	}
	if got.Root.Attempt != 1 {
		t.Fatalf("root attempt = %d, want max child attempt 1", got.Root.Attempt)
	}
	if len(got.Spans) != 2 {
		t.Fatalf("spans = %d", len(got.Spans))
	}
	for _, s := range got.Spans {
		if s.Trace != ctx.Trace || s.ID == 0 || s.Parent != ctx.Span {
			t.Fatalf("span not filled in: %+v", s)
		}
	}
	byJob, ok := tr.ByJob(7)
	if !ok || byJob.ID != ctx.Trace {
		t.Fatalf("ByJob = %v, %v", byJob.ID, ok)
	}
	if _, ok := tr.ByJob(99); ok {
		t.Fatal("ByJob found a job that never ran")
	}
	// Recording after EndTrace is a silent no-op (the stage is gone).
	tr.Record(ctx, Span{Phase: PhaseReboot})
	if again, _ := tr.Get(ctx.Trace); len(again.Spans) != 2 {
		t.Fatal("Record after EndTrace mutated the committed trace")
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewWithConfig(Config{MaxTraces: 2})
	end := func(job int64) TraceID {
		ctx := tr.StartTrace("f", job, "f", 0)
		tr.EndTrace(ctx, time.Duration(job)*time.Millisecond, "", "")
		return ctx.Trace
	}
	first := end(1)
	end(2)
	end(3)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if _, ok := tr.Get(first); ok {
		t.Fatal("oldest trace not evicted")
	}
	all := tr.Traces()
	if len(all) != 2 || all[0].Root.Job != 2 || all[1].Root.Job != 3 {
		t.Fatalf("Traces order = %v", []int64{all[0].Root.Job, all[1].Root.Job})
	}
	if st := tr.Stats(); st.Evicted != 1 || st.Committed != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMaxActiveOverflow(t *testing.T) {
	tr := NewWithConfig(Config{MaxActive: 1})
	a := tr.StartTrace("a", 1, "a", 0)
	b := tr.StartTrace("b", 2, "b", 0)
	if !a.Valid() || b.Valid() {
		t.Fatalf("contexts: a=%v b=%v", a.Valid(), b.Valid())
	}
	if st := tr.Stats(); st.Overflow != 1 || st.Active != 1 {
		t.Fatalf("stats = %+v", st)
	}
	tr.EndTrace(a, time.Second, "", "")
	if c := tr.StartTrace("c", 3, "c", 0); !c.Valid() {
		t.Fatal("slot not freed after EndTrace")
	}
}

func TestMaxSpansTruncation(t *testing.T) {
	tr := NewWithConfig(Config{MaxSpans: 2})
	ctx := tr.StartTrace("f", 1, "f", 0)
	for i := 0; i < 5; i++ {
		tr.Record(ctx, Span{Phase: PhaseRetry})
	}
	tr.EndTrace(ctx, time.Second, "", "")
	got, _ := tr.Get(ctx.Trace)
	if len(got.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(got.Spans))
	}
	if st := tr.Stats(); st.TruncatedSpans != 3 {
		t.Fatalf("truncated = %d, want 3", st.TruncatedSpans)
	}
}

func TestSamplingDeterministicAndSeeded(t *testing.T) {
	run := func(seed int64, rate float64) []TraceID {
		tr := NewWithConfig(Config{Seed: seed, SampleRate: rate})
		for j := int64(0); j < 200; j++ {
			ctx := tr.StartTrace("f", j, "f", 0)
			tr.EndTrace(ctx, time.Millisecond, "", "")
		}
		all := tr.Traces()
		ids := make([]TraceID, len(all))
		for i, x := range all {
			ids[i] = x.ID
		}
		return ids
	}
	a := run(42, 0.25)
	b := run(42, 0.25)
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("rate 0.25 kept %d/200 — sampling not thinning", len(a))
	}
	c := run(43, 0.25)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical samples")
	}
}

func TestSamplingOverrides(t *testing.T) {
	// Negative rate: nothing head-sampled, but errors and slow traces kept.
	tr := NewWithConfig(Config{SampleRate: -1, SlowThreshold: time.Second})
	ok := tr.StartTrace("ok", 1, "ok", 0)
	tr.EndTrace(ok, time.Millisecond, "", "")
	failed := tr.StartTrace("bad", 2, "bad", 0)
	tr.EndTrace(failed, time.Millisecond, "", "worker exploded")
	slow := tr.StartTrace("slow", 3, "slow", 0)
	tr.EndTrace(slow, 2*time.Second, "", "")
	if tr.Len() != 2 {
		t.Fatalf("kept %d, want error+slow only", tr.Len())
	}
	if _, ok := tr.ByJob(1); ok {
		t.Fatal("clean fast trace survived negative rate")
	}
	if st := tr.Stats(); st.Unsampled != 1 {
		t.Fatalf("unsampled = %d", st.Unsampled)
	}

	// DropErrors disables the error override.
	tr2 := NewWithConfig(Config{SampleRate: -1, DropErrors: true})
	f := tr2.StartTrace("bad", 1, "bad", 0)
	tr2.EndTrace(f, time.Millisecond, "", "worker exploded")
	if tr2.Len() != 0 {
		t.Fatal("DropErrors kept an error trace")
	}
}

func TestSlowest(t *testing.T) {
	tr := New()
	for j := int64(1); j <= 4; j++ {
		ctx := tr.StartTrace("f", j, "f", 0)
		// Job 3 slowest, then 1, 4, 2.
		dur := map[int64]time.Duration{1: 30, 2: 10, 3: 40, 4: 20}[j]
		tr.EndTrace(ctx, dur*time.Millisecond, "", "")
	}
	got := tr.Slowest(2)
	if len(got) != 2 || got[0].Root.Job != 3 || got[1].Root.Job != 1 {
		jobs := make([]int64, len(got))
		for i, x := range got {
			jobs[i] = x.Root.Job
		}
		t.Fatalf("Slowest(2) jobs = %v, want [3 1]", jobs)
	}
}

func TestSummarizeTelescopes(t *testing.T) {
	tr := New()
	ctx := tr.StartTrace("f", 1, "f", 0)
	// Contiguous phases: queue [0,10] → boot [10,40] → exec [40,70].
	tr.Record(ctx, Span{Phase: PhaseSubmit, Start: 0, End: 0})
	tr.Record(ctx, Span{Phase: PhaseQueue, Start: 0, End: 10 * time.Millisecond})
	tr.Record(ctx, Span{Phase: PhaseBoot, Worker: "w", Start: 10 * time.Millisecond, End: 40 * time.Millisecond, EnergyJ: 1.5})
	tr.Record(ctx, Span{Phase: PhaseExec, Worker: "w", Start: 40 * time.Millisecond, End: 70 * time.Millisecond, EnergyJ: 0.25})
	tr.EndTrace(ctx, 70*time.Millisecond, "w", "")
	got, _ := tr.Get(ctx.Trace)
	sum := Summarize(got)
	var phaseTotal time.Duration
	var joules float64
	for _, p := range sum.Phases {
		phaseTotal += p.Duration
		joules += p.EnergyJ
	}
	if phaseTotal+sum.Unattributed != sum.Latency {
		t.Fatalf("phases %v + unattributed %v != latency %v", phaseTotal, sum.Unattributed, sum.Latency)
	}
	if sum.Unattributed != 0 {
		t.Fatalf("contiguous spans left %v unattributed", sum.Unattributed)
	}
	if joules != sum.EnergyJ || joules != 1.75 {
		t.Fatalf("energy: phases %v, summary %v, want 1.75", joules, sum.EnergyJ)
	}
	// Canonical ordering: submit before queue before boot before exec.
	order := make([]Phase, len(sum.Phases))
	for i, p := range sum.Phases {
		order[i] = p.Phase
	}
	want := []Phase{PhaseSubmit, PhaseQueue, PhaseBoot, PhaseExec}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("phase order = %v, want %v", order, want)
		}
	}
}

func TestSummarizeUnattributedGap(t *testing.T) {
	tr := New()
	ctx := tr.StartTrace("f", 1, "f", 0)
	// A hung attempt: queue covered, then nothing until the deadline fired.
	tr.Record(ctx, Span{Phase: PhaseQueue, Start: 0, End: 5 * time.Millisecond})
	tr.EndTrace(ctx, 100*time.Millisecond, "", "deadline exceeded")
	got, _ := tr.Get(ctx.Trace)
	sum := Summarize(got)
	if sum.Unattributed != 95*time.Millisecond {
		t.Fatalf("unattributed = %v, want 95ms", sum.Unattributed)
	}
	if sum.Err == "" {
		t.Fatal("error lost")
	}
}

func TestContextWireRoundTrip(t *testing.T) {
	ctx := Context{Trace: 0xabc, Span: 0xdef}
	tid, sid := ctx.Wire()
	back := ContextFromWire(tid, sid)
	if back != ctx {
		t.Fatalf("wire round trip: %+v != %+v", back, ctx)
	}
	if got := ContextFromWire("", ""); got.Valid() {
		t.Fatal("empty wire form parsed as valid")
	}
	if got := ContextFromWire("zzz", "1"); got.Valid() {
		t.Fatal("garbage wire form parsed as valid")
	}
	var invalid Context
	tid, sid = invalid.Wire()
	if tid != "" || sid != "" {
		t.Fatalf("invalid context wire = %q, %q", tid, sid)
	}
}
