package tracing

import "time"

// PhaseStat aggregates one phase's contribution to a trace: total
// duration, total metered joules, and the number of spans merged (more
// than one when the invocation retried).
type PhaseStat struct {
	// Phase identifies the lifecycle phase aggregated here.
	Phase Phase `json:"phase"`
	// Duration is the phase's total time on the cluster clock.
	Duration time.Duration `json:"duration_ns"`
	// EnergyJ is the phase's total metered energy in joules.
	EnergyJ float64 `json:"energy_j"`
	// Count is the number of spans merged into this row.
	Count int `json:"count"`
}

// Summary is a trace's critical-path breakdown. Because the instrumented
// phases are recorded with contiguous boundaries (each phase starts where
// the previous one ended), the phase durations telescope: their sum plus
// Unattributed equals the end-to-end Latency exactly. In simulation runs
// Unattributed is zero for clean invocations; in live mode it absorbs
// scheduling gaps the instrumentation cannot see, and for hung/timed-out
// attempts it absorbs the interval the dead worker never reported.
// Likewise EnergyJ is the sum of the phase energies, which equals the
// invocation's metered energy (boot + exec meter deltas) by construction.
type Summary struct {
	// Trace is the summarized trace's id.
	Trace TraceID `json:"trace"`
	// Job is the invocation's job id.
	Job int64 `json:"job"`
	// Function names the invoked workload function.
	Function string `json:"function"`
	// Worker is the final attempt's worker (empty if none started).
	Worker string `json:"worker,omitempty"`
	// Attempts counts executions (1 = no retries).
	Attempts int `json:"attempts"`
	// Err is the final failure message, empty on success.
	Err string `json:"err,omitempty"`
	// Start is when the invocation was submitted, on the cluster clock.
	Start time.Duration `json:"start_ns"`
	// End is when the final result settled.
	End time.Duration `json:"end_ns"`
	// Latency is End - Start: the end-to-end invocation latency.
	Latency time.Duration `json:"latency_ns"`
	// Phases lists only the phases present, in canonical lifecycle order.
	Phases []PhaseStat `json:"phases"`
	// Unattributed is the part of Latency no recorded phase covers,
	// clamped at zero (retries can overlap a parked wait with nothing
	// else, never the reverse).
	Unattributed time.Duration `json:"unattributed_ns"`
	// EnergyJ is the invocation's total metered energy in joules.
	EnergyJ float64 `json:"energy_j"`
}

// Summarize computes the critical-path breakdown of one trace.
func Summarize(tr Trace) Summary {
	sum := Summary{
		Trace:    tr.ID,
		Job:      tr.Root.Job,
		Function: tr.Root.Function,
		Worker:   tr.Root.Worker,
		Attempts: tr.Root.Attempt + 1,
		Err:      tr.Root.Err,
		Start:    tr.Root.Start,
		End:      tr.Root.End,
		Latency:  tr.Root.Duration(),
	}
	byPhase := map[Phase]*PhaseStat{}
	var covered time.Duration
	for _, s := range tr.Spans {
		st, ok := byPhase[s.Phase]
		if !ok {
			st = &PhaseStat{Phase: s.Phase}
			byPhase[s.Phase] = st
		}
		st.Duration += s.Duration()
		st.EnergyJ += s.EnergyJ
		st.Count++
		covered += s.Duration()
		sum.EnergyJ += s.EnergyJ
	}
	for _, p := range PhaseOrder() {
		if st, ok := byPhase[p]; ok {
			sum.Phases = append(sum.Phases, *st)
		}
	}
	if gap := sum.Latency - covered; gap > 0 {
		sum.Unattributed = gap
	}
	return sum
}

// SummarizeAll summarizes every trace, preserving order.
func SummarizeAll(traces []Trace) []Summary {
	out := make([]Summary, len(traces))
	for i, tr := range traces {
		out[i] = Summarize(tr)
	}
	return out
}
