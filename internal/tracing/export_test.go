package tracing

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTraces builds a small fixed pair of traces by hand: one clean
// warm invocation and one retried cold invocation with a fault.
func goldenTraces() []Trace {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	t1 := Trace{
		ID: 0x1111,
		Root: Span{Trace: 0x1111, ID: 1, Phase: PhaseInvocation, Name: "CascSHA",
			Job: 1, Function: "CascSHA", Worker: "sbc-001", Start: ms(0), End: ms(40)},
		Spans: []Span{
			{Trace: 0x1111, ID: 2, Parent: 1, Phase: PhaseSubmit, Start: ms(0), End: ms(0)},
			{Trace: 0x1111, ID: 3, Parent: 1, Phase: PhaseQueue, Start: ms(0), End: ms(10)},
			{Trace: 0x1111, ID: 4, Parent: 1, Phase: PhaseDispatch, Start: ms(10), End: ms(10)},
			{Trace: 0x1111, ID: 5, Parent: 1, Phase: PhaseBoot, Worker: "sbc-001", Start: ms(10), End: ms(10), Detail: "warm"},
			{Trace: 0x1111, ID: 6, Parent: 1, Phase: PhaseExec, Worker: "sbc-001", Start: ms(10), End: ms(40), EnergyJ: 0.0588, Detail: "overhead+exec"},
			{Trace: 0x1111, ID: 7, Parent: 1, Phase: PhaseReboot, Worker: "sbc-001", Start: ms(40), End: ms(40), Detail: "power-down"},
			{Trace: 0x1111, ID: 8, Parent: 1, Phase: PhaseSettle, Start: ms(40), End: ms(40), Detail: "ok"},
		},
	}
	t2 := Trace{
		ID: 0x2222,
		Root: Span{Trace: 0x2222, ID: 9, Phase: PhaseInvocation, Name: "JSON",
			Job: 2, Function: "JSON", Worker: "sbc-002", Attempt: 1, Start: ms(5), End: ms(3100),
			Err: ""},
		Spans: []Span{
			{Trace: 0x2222, ID: 10, Parent: 9, Phase: PhaseQueue, Start: ms(5), End: ms(20)},
			{Trace: 0x2222, ID: 11, Parent: 9, Phase: PhaseFault, Worker: "sbc-003", Start: ms(1500), End: ms(1500), Err: "node: injected worker error"},
			{Trace: 0x2222, ID: 12, Parent: 9, Phase: PhaseRetry, Start: ms(1500), End: ms(1520), Detail: "backoff"},
			{Trace: 0x2222, ID: 13, Parent: 9, Phase: PhaseBoot, Worker: "sbc-002", Attempt: 1, Start: ms(1540), End: ms(3050), EnergyJ: 2.9596, Detail: "cold"},
			{Trace: 0x2222, ID: 14, Parent: 9, Phase: PhaseExec, Worker: "sbc-002", Attempt: 1, Start: ms(3050), End: ms(3100), EnergyJ: 0.098, Detail: "overhead+exec"},
		},
	}
	return []Trace{t1, t2}
}

// TestChromeTraceGolden locks the exporter's exact byte output against a
// committed fixture: the trace_event format is consumed by external
// tools (Perfetto, chrome://tracing), so accidental shape drift must
// show up as a test diff. Regenerate with `go test -run Golden -update`.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenTraces()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome export drifted from golden file %s\ngot:  %s\nwant: %s", path, buf.Bytes(), want)
	}
}

// TestChromeTraceShape validates the structural invariants any
// trace_event consumer relies on, independent of the golden bytes.
func TestChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenTraces()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string            `json:"name"`
			Phase string            `json:"ph"`
			TS    *float64          `json:"ts"`
			Dur   *float64          `json:"dur"`
			PID   *int              `json:"pid"`
			TID   *int              `json:"tid"`
			Args  map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no events")
	}
	var meta, complete int
	workerTIDs := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "M":
			meta++
			if ev.Name != "process_name" && ev.Name != "thread_name" {
				t.Fatalf("metadata event %q", ev.Name)
			}
		case "X":
			complete++
			if ev.TS == nil || ev.Dur == nil || ev.PID == nil || ev.TID == nil {
				t.Fatalf("complete event missing ts/dur/pid/tid: %+v", ev)
			}
			if *ev.Dur < 0 {
				t.Fatalf("negative duration: %+v", ev)
			}
			if ev.Args["trace"] == "" {
				t.Fatalf("complete event without trace arg: %+v", ev)
			}
			if w := ev.Args["worker"]; w != "" && (ev.Name == "boot" || ev.Name == "exec" || ev.Name == "reboot") {
				if *ev.TID == 0 {
					t.Fatalf("worker phase on orchestrator track: %+v", ev)
				}
				workerTIDs[*ev.TID] = true
			}
		default:
			t.Fatalf("unexpected ph %q", ev.Phase)
		}
	}
	// process_name + orchestrator thread + 2 worker threads (sbc-003 only
	// appears on a fault span, which renders on the orchestrator track).
	if meta != 4 {
		t.Fatalf("metadata events = %d, want 4", meta)
	}
	wantComplete := 2 + 7 + 5 // roots + t1 children + t2 children
	if complete != wantComplete {
		t.Fatalf("complete events = %d, want %d", complete, wantComplete)
	}
	if len(workerTIDs) != 2 {
		t.Fatalf("worker tracks = %d, want 2 (sbc-001, sbc-002)", len(workerTIDs))
	}
}

func TestWriteNDJSON(t *testing.T) {
	var buf bytes.Buffer
	traces := goldenTraces()
	if err := WriteNDJSON(&buf, traces); err != nil {
		t.Fatal(err)
	}
	wantLines := 0
	for _, tr := range traces {
		wantLines += 1 + len(tr.Spans)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		lines++
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("line %d not a span: %v\n%s", lines, err, sc.Text())
		}
		if s.Trace == 0 {
			t.Fatalf("line %d lost its trace id: %s", lines, sc.Text())
		}
	}
	if lines != wantLines {
		t.Fatalf("lines = %d, want %d", lines, wantLines)
	}
}
