package tracing

import (
	"io"
	"sync"
	"testing"
	"time"
)

// TestConcurrentRecordAndExport hammers one tracer from parallel
// producers (start/record/end) while readers export and query — the
// live-mode shape, where worker goroutines record spans as gateway
// handlers stream /traces dumps. Run under -race.
func TestConcurrentRecordAndExport(t *testing.T) {
	tr := NewWithConfig(Config{MaxTraces: 64, MaxActive: 1024})
	const producers = 8
	const tracesEach = 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < tracesEach; i++ {
				job := int64(p*tracesEach + i)
				ctx := tr.StartTrace("f", job, "f", 0)
				tr.Record(ctx, Span{Phase: PhaseQueue, End: time.Millisecond})
				tr.Record(ctx, Span{Phase: PhaseExec, Worker: "w", Start: time.Millisecond, End: 2 * time.Millisecond, EnergyJ: 0.1})
				tr.EndTrace(ctx, 2*time.Millisecond, "w", "")
			}
		}(p)
	}
	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if err := WriteChromeTrace(io.Discard, tr.Traces()); err != nil {
					t.Errorf("chrome export: %v", err)
					return
				}
				if err := WriteNDJSON(io.Discard, tr.Slowest(10)); err != nil {
					t.Errorf("ndjson export: %v", err)
					return
				}
				tr.Stats()
				tr.ByJob(3)
			}
		}()
	}
	wg.Wait()
	close(done)
	readers.Wait()
	if tr.Len() != 64 {
		t.Fatalf("Len = %d, want full ring of 64", tr.Len())
	}
	st := tr.Stats()
	if st.Active != 0 {
		t.Fatalf("stats.Active = %d after all ends", st.Active)
	}
	if st.Evicted != producers*tracesEach-64 {
		t.Fatalf("evicted = %d, want %d", st.Evicted, producers*tracesEach-64)
	}
	// Every retained trace must be internally consistent: children carry
	// the trace id and parent the root span.
	for _, x := range tr.Traces() {
		if len(x.Spans) != 2 {
			t.Fatalf("trace %v has %d spans", x.ID, len(x.Spans))
		}
		for _, s := range x.Spans {
			if s.Trace != x.ID || s.Parent != x.Root.ID {
				t.Fatalf("inconsistent span %+v in trace %v", s, x.ID)
			}
		}
	}
}
