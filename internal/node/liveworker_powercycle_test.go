package node

import (
	"testing"
	"time"

	"microfaas/internal/core"
	"microfaas/internal/powermgr"
	"microfaas/internal/workload"
)

// TestManagedLiveWorkerPowerCycleReconnects drives the full live fault
// power-cycle loop: a managed worker serves a job over the persistent
// connection, the power manager's NoteFault gates it off (dropping that
// connection, as a gated-off SBC would), and the next wake-on-demand job
// must transparently redial and succeed — no invocation lost to the
// cycle.
func TestManagedLiveWorkerPowerCycleReconnects(t *testing.T) {
	rt := core.NewWallRuntime()
	w, err := StartLiveWorker(LiveWorkerConfig{
		ID: "live-pc", Env: &workload.Env{}, Managed: true,
		Clock: rt.Now, BootDelay: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Long timeouts: this test power-cycles explicitly via NoteFault, so
	// the idle machinery must stay out of the way.
	m, err := powermgr.New(powermgr.Config{
		Runtime: rt, Nodes: []powermgr.Node{w},
		Policy: powermgr.Policy{IdleTimeout: time.Hour, MinUp: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	wake := func() {
		ready := make(chan struct{})
		if m.RequestUp("live-pc", "test", func() { close(ready) }) {
			return // already up
		}
		select {
		case <-ready:
		case <-time.After(5 * time.Second):
			t.Fatal("wake never completed")
		}
	}
	run := func(id int64) core.Result {
		done := make(chan core.Result, 1)
		w.RunJob(core.Job{ID: id, Function: "CascSHA", Args: []byte(`{"rounds":5,"seed":"pc"}`)},
			func(r core.Result) { done <- r })
		select {
		case r := <-done:
			return r
		case <-time.After(10 * time.Second):
			t.Fatalf("job %d never settled", id)
			return core.Result{}
		}
	}

	wake()
	if r := run(1); r.Err != "" {
		t.Fatalf("job before the cycle failed: %s", r.Err)
	}
	// The job is done (worker back to Idle), so the fault-driven
	// power-down must succeed and drop the persistent connection.
	m.NoteFault("live-pc")
	if m.IsUp("live-pc") {
		t.Fatal("NoteFault left the worker up")
	}
	wake()
	if r := run(2); r.Err != "" {
		t.Fatalf("job after the power-cycle failed: %s", r.Err)
	}
	if !m.IsUp("live-pc") {
		t.Fatal("worker not up after the post-cycle wake")
	}
}
