package node

import (
	"time"

	"microfaas/internal/core"
	"microfaas/internal/telemetry"
)

// Worker-owned metric names (see DESIGN.md §7). Energy attribution is the
// headline: each finished job banks the joules its worker's meter device
// accumulated between job start and finish, labeled by function, so
// microfaas_function_energy_joules_total reproduces the paper's
// J/function figure live instead of post-hoc. Jobs that never finish
// (injected hangs) burn power the cluster-level meter still sees but no
// function is charged for — the same asymmetry the trace collector has.
const (
	metricBoots    = "microfaas_worker_boots_total"
	metricFaults   = "microfaas_fault_injections_total"
	metricFnEnergy = "microfaas_function_energy_joules_total"

	helpBoots    = "Job starts per worker, split cold (paid the boot) vs warm (skipped it)."
	helpFaults   = "Injected worker faults by kind (crash, hang, error, slow)."
	helpFnEnergy = "Metered joules attributed to the function that consumed them."
)

// workerMetrics holds a worker's pre-created handles. The zero value is
// the disabled path: every handle no-ops on nil, so call sites need no
// guards.
type workerMetrics struct {
	tel        *telemetry.Telemetry
	bootsCold  *telemetry.Counter
	bootsWarm  *telemetry.Counter
	faultCrash *telemetry.Counter
	faultHang  *telemetry.Counter
	faultError *telemetry.Counter
	faultSlow  *telemetry.Counter
}

// newWorkerMetrics pre-creates one worker's series so they are present
// (at zero) from the first scrape.
func newWorkerMetrics(tel *telemetry.Telemetry, workerID string) workerMetrics {
	if tel == nil {
		return workerMetrics{}
	}
	reg := tel.Registry()
	return workerMetrics{
		tel:        tel,
		bootsCold:  reg.Counter(metricBoots, helpBoots, "worker", workerID, "kind", "cold"),
		bootsWarm:  reg.Counter(metricBoots, helpBoots, "worker", workerID, "kind", "warm"),
		faultCrash: reg.Counter(metricFaults, helpFaults, "worker", workerID, "kind", "crash"),
		faultHang:  reg.Counter(metricFaults, helpFaults, "worker", workerID, "kind", "hang"),
		faultError: reg.Counter(metricFaults, helpFaults, "worker", workerID, "kind", "error"),
		faultSlow:  reg.Counter(metricFaults, helpFaults, "worker", workerID, "kind", "slow"),
	}
}

// energy returns the per-function joules counter, created lazily:
// functions are an open set, unlike workers.
func (m workerMetrics) energy(function string) *telemetry.Counter {
	if m.tel == nil {
		return nil
	}
	return m.tel.Registry().Counter(metricFnEnergy, helpFnEnergy, "function", function)
}

// event appends one worker lifecycle event; no-op when telemetry is off.
func (m workerMetrics) event(at time.Duration, typ string, job core.Job, worker, detail string) {
	if m.tel == nil {
		return
	}
	m.tel.Emit(at, typ, job.ID, job.Function, worker, job.Attempt, detail)
}

// rawEvent appends an event for call sites that only have the protocol
// request, not the full core.Job (the live worker's server side — the
// attempt number does not travel the wire, so it reports as 0).
func (m workerMetrics) rawEvent(at time.Duration, typ string, job int64, function, worker, detail string) {
	if m.tel == nil {
		return
	}
	m.tel.Emit(at, typ, job, function, worker, 0, detail)
}
