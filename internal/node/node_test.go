package node

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"microfaas/internal/bootos"
	"microfaas/internal/core"
	"microfaas/internal/model"
	"microfaas/internal/power"
	"microfaas/internal/sim"
	"microfaas/internal/workload"
)

// --- RackServer ---

func TestRackServerUncontendedTaskKeepsWallTime(t *testing.T) {
	e := sim.NewEngine(1)
	rs := NewRackServer("srv", 12, e, nil, power.DefaultServerModel())
	doneAt := time.Duration(-1)
	// 0.5 cpu-s at 0.5 cores → 1 s wall when uncontended.
	rs.Run(0.5, 0.5, func() { doneAt = e.Now() })
	e.RunAll()
	if doneAt != time.Second {
		t.Fatalf("completed at %v, want 1s", doneAt)
	}
}

func TestRackServerSaturationStretchesTasks(t *testing.T) {
	e := sim.NewEngine(1)
	rs := NewRackServer("srv", 2, e, nil, power.DefaultServerModel())
	var finished []time.Duration
	// Four tasks each demanding a full core on a 2-core server: everything
	// runs at half rate, so 1 cpu-s tasks take 2 s.
	for i := 0; i < 4; i++ {
		rs.Run(1.0, 1.0, func() { finished = append(finished, e.Now()) })
	}
	e.RunAll()
	if len(finished) != 4 {
		t.Fatalf("finished %d tasks", len(finished))
	}
	for _, at := range finished {
		if at != 2*time.Second {
			t.Fatalf("task finished at %v, want 2s under 2x oversubscription", at)
		}
	}
}

func TestRackServerDynamicRebalance(t *testing.T) {
	e := sim.NewEngine(1)
	rs := NewRackServer("srv", 1, e, nil, power.DefaultServerModel())
	var first, second time.Duration
	rs.Run(1.0, 1.0, func() { first = e.Now() })
	// Second task arrives at t=0.5s; from then on both run at half rate.
	e.Schedule(500*time.Millisecond, func() {
		rs.Run(1.0, 1.0, func() { second = e.Now() })
	})
	e.RunAll()
	// First: 0.5 cpu-s done by 0.5s, then 0.5 cpu-s at half rate → +1s → 1.5s.
	if first != 1500*time.Millisecond {
		t.Fatalf("first task finished at %v, want 1.5s", first)
	}
	// Second: consumes 0.5 cpu-s at half rate until the first leaves
	// (1.5s), then its remaining 0.5 cpu-s at full rate → done at 2.0s.
	// (Work conservation: the core delivers exactly 2 cpu-s by t=2s.)
	if second != 2000*time.Millisecond {
		t.Fatalf("second task finished at %v, want 2.0s", second)
	}
}

func TestRackServerPowerFollowsUtilization(t *testing.T) {
	e := sim.NewEngine(1)
	meter := power.NewMeter()
	rs := NewRackServer("srv", 12, e, meter, power.DefaultServerModel())
	if got := meter.Power("srv"); got != 60 {
		t.Fatalf("idle draw = %v, want 60", got)
	}
	rs.Run(6.0, 6.0, func() {}) // half the cores
	if got, want := float64(meter.Power("srv")), float64(power.DefaultServerModel().Power(0.5)); math.Abs(got-want) > 1e-9 {
		t.Fatalf("draw at u=0.5 = %v, want %v", got, want)
	}
	e.RunAll()
	if got := meter.Power("srv"); got != 60 {
		t.Fatalf("post-drain draw = %v, want 60", got)
	}
}

func TestRackServerZeroWorkTaskCompletesAsync(t *testing.T) {
	e := sim.NewEngine(1)
	rs := NewRackServer("srv", 1, e, nil, power.DefaultServerModel())
	fired := false
	rs.Run(0, 1, func() { fired = true })
	if fired {
		t.Fatal("zero-work task completed synchronously")
	}
	e.RunAll()
	if !fired {
		t.Fatal("zero-work task never completed")
	}
}

func TestRackServerRejectsBadTask(t *testing.T) {
	e := sim.NewEngine(1)
	rs := NewRackServer("srv", 1, e, nil, power.DefaultServerModel())
	for _, args := range [][2]float64{{-1, 1}, {1, 0}, {1, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bad task %v accepted", args)
				}
			}()
			rs.Run(args[0], args[1], func() {})
		}()
	}
}

func TestRackServerUtilizationCap(t *testing.T) {
	e := sim.NewEngine(1)
	rs := NewRackServer("srv", 2, e, nil, power.DefaultServerModel())
	for i := 0; i < 10; i++ {
		rs.Run(5, 1, func() {})
	}
	if got := rs.Utilization(); got != 1 {
		t.Fatalf("utilization = %v, want capped at 1", got)
	}
}

// --- SimWorker (ARM) ---

func newARMWorker(t *testing.T, e *sim.Engine, meter *power.Meter) *SimWorker {
	t.Helper()
	w, err := NewSimWorker(SimWorkerConfig{
		ID: "sbc-00", Platform: model.ARM, Engine: e, Meter: meter,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestARMWorkerCycleTimingMatchesModel(t *testing.T) {
	e := sim.NewEngine(1)
	w := newARMWorker(t, e, nil)
	var res core.Result
	w.RunJob(core.Job{ID: 1, Function: "CascSHA"}, func(r core.Result) { res = r })
	e.RunAll()
	spec, _ := model.FunctionByName("CascSHA")
	link := model.DefaultWorkerLink(model.ARM)
	wantBoot := bootos.BootTime(model.ARM)
	wantExec := spec.ExecTime(model.ARM, link)
	wantOvh := spec.OverheadTime(model.ARM, link)
	if res.Boot != wantBoot || res.Exec != wantExec || res.Overhead != wantOvh {
		t.Fatalf("timing = boot %v exec %v ovh %v, want %v/%v/%v",
			res.Boot, res.Exec, res.Overhead, wantBoot, wantExec, wantOvh)
	}
	if got := res.FinishedAt - res.StartedAt; got != wantBoot+wantExec+wantOvh {
		t.Fatalf("wall time %v != cycle %v", got, wantBoot+wantExec+wantOvh)
	}
	if res.Err != "" {
		t.Fatalf("unexpected error %q", res.Err)
	}
}

func TestARMWorkerEnergyPerJobNearPaper(t *testing.T) {
	// One mean-ish job should cost a few joules; across the suite the mean
	// is calibrated to ≈5.7 J (asserted in internal/model) — here verify
	// the meter integration agrees with busy-power × cycle-time.
	e := sim.NewEngine(1)
	meter := power.NewMeter()
	w := newARMWorker(t, e, meter)
	w.RunJob(core.Job{ID: 1, Function: "FloatOps"}, func(core.Result) {})
	e.RunAll()
	cycle := e.Now()
	got := float64(meter.Energy("sbc-00", cycle))
	want := 1.96 * cycle.Seconds()
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("energy = %v J, want %v J", got, want)
	}
}

func TestARMWorkerPowersDownBetweenJobs(t *testing.T) {
	e := sim.NewEngine(1)
	meter := power.NewMeter()
	w := newARMWorker(t, e, meter)
	if got := meter.Power("sbc-00"); got != 0.128 {
		t.Fatalf("initial draw = %v, want 0.128 (off)", got)
	}
	w.RunJob(core.Job{ID: 1, Function: "FloatOps"}, func(core.Result) {})
	e.RunAll()
	if got := meter.Power("sbc-00"); got != 0.128 {
		t.Fatalf("post-job draw = %v, want 0.128 (off)", got)
	}
}

func TestARMWorkerUnknownFunctionFailsAsync(t *testing.T) {
	e := sim.NewEngine(1)
	w := newARMWorker(t, e, nil)
	var res core.Result
	called := false
	w.RunJob(core.Job{ID: 1, Function: "Bogus"}, func(r core.Result) { res = r; called = true })
	if called {
		t.Fatal("done fired synchronously")
	}
	e.RunAll()
	if !called || res.Err == "" {
		t.Fatalf("unknown function: called=%v err=%q", called, res.Err)
	}
}

func TestARMWorkerJitterPerturbsButBounded(t *testing.T) {
	e := sim.NewEngine(1)
	w, err := NewSimWorker(SimWorkerConfig{
		ID: "sbc-j", Platform: model.ARM, Engine: e, Jitter: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := model.FunctionByName("FloatOps")
	link := model.DefaultWorkerLink(model.ARM)
	nominal := spec.ExecTime(model.ARM, link)
	distinct := map[time.Duration]bool{}
	for i := 0; i < 20; i++ {
		var res core.Result
		w.RunJob(core.Job{ID: int64(i), Function: "FloatOps"}, func(r core.Result) { res = r })
		e.RunAll()
		lo := time.Duration(float64(nominal) * 0.949)
		hi := time.Duration(float64(nominal) * 1.051)
		if res.Exec < lo || res.Exec > hi {
			t.Fatalf("jittered exec %v outside [%v,%v]", res.Exec, lo, hi)
		}
		distinct[res.Exec] = true
	}
	if len(distinct) < 5 {
		t.Fatalf("jitter produced only %d distinct values", len(distinct))
	}
}

func TestNoRebootAblationSkipsBootWhenWarm(t *testing.T) {
	e := sim.NewEngine(1)
	meter := power.NewMeter()
	w, err := NewSimWorker(SimWorkerConfig{
		ID: "sbc-nr", Platform: model.ARM, Engine: e, Meter: meter, DisableReboot: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var boots []time.Duration
	for i := 0; i < 2; i++ {
		w.RunJob(core.Job{ID: int64(i), Function: "FloatOps"}, func(r core.Result) { boots = append(boots, r.Boot) })
		e.RunAll()
	}
	if boots[0] == 0 {
		t.Fatal("first job must still boot")
	}
	if boots[1] != 0 {
		t.Fatalf("warm job booted for %v with reboot disabled", boots[1])
	}
	// The warm worker idles (draws idle power) instead of powering down.
	if got := meter.Power("sbc-nr"); got != power.DefaultSBCModel().IdleW {
		t.Fatalf("warm draw = %v, want idle %v", got, power.DefaultSBCModel().IdleW)
	}
}

func TestSimWorkerConfigValidation(t *testing.T) {
	e := sim.NewEngine(1)
	if _, err := NewSimWorker(SimWorkerConfig{Platform: model.ARM, Engine: e}); err == nil {
		t.Fatal("missing id accepted")
	}
	if _, err := NewSimWorker(SimWorkerConfig{ID: "x", Platform: model.ARM}); err == nil {
		t.Fatal("missing engine accepted")
	}
	if _, err := NewSimWorker(SimWorkerConfig{ID: "x", Platform: model.X86, Engine: e}); err == nil {
		t.Fatal("VM without server accepted")
	}
	rs := NewRackServer("srv", 12, e, nil, power.DefaultServerModel())
	if _, err := NewSimWorker(SimWorkerConfig{ID: "x", Platform: model.ARM, Engine: e, Server: rs}); err == nil {
		t.Fatal("SBC with server accepted")
	}
}

// --- SimWorker (X86 on RackServer) ---

func TestVMWorkerUncontendedTimingMatchesModel(t *testing.T) {
	e := sim.NewEngine(1)
	rs := NewRackServer("srv", 12, e, nil, power.DefaultServerModel())
	w, err := NewSimWorker(SimWorkerConfig{
		ID: "vm-0", Platform: model.X86, Engine: e, Server: rs,
	})
	if err != nil {
		t.Fatal(err)
	}
	var res core.Result
	w.RunJob(core.Job{ID: 1, Function: "CascSHA"}, func(r core.Result) { res = r })
	e.RunAll()
	spec, _ := model.FunctionByName("CascSHA")
	link := model.DefaultWorkerLink(model.X86)
	want := bootos.BootTime(model.X86) + spec.TotalTime(model.X86, link)
	got := res.FinishedAt - res.StartedAt
	// Processor-sharing discretization keeps this within a hair.
	if math.Abs(float64(got-want)) > float64(5*time.Millisecond) {
		t.Fatalf("uncontended VM cycle %v, want %v", got, want)
	}
}

func TestVMWorkersContendPastSaturation(t *testing.T) {
	// 24 VMs on 12 cores running the most CPU-bound function must each
	// take roughly twice as long as a lone VM.
	elapsed := func(vms int) time.Duration {
		e := sim.NewEngine(1)
		rs := NewRackServer("srv", 12, e, nil, power.DefaultServerModel())
		var last time.Duration
		for i := 0; i < vms; i++ {
			w, err := NewSimWorker(SimWorkerConfig{
				ID: "vm", Platform: model.X86, Engine: e, Server: rs,
			})
			if err != nil {
				t.Fatal(err)
			}
			w.RunJob(core.Job{ID: int64(i), Function: "CascSHA"}, func(r core.Result) {
				if r.FinishedAt > last {
					last = r.FinishedAt
				}
			})
		}
		e.RunAll()
		return last
	}
	lone, crowd := elapsed(1), elapsed(24)
	ratio := float64(crowd) / float64(lone)
	// CascSHA demand ≈0.93 cores; 24 × 0.93 / 12 ≈ 1.86× oversubscription.
	if ratio < 1.5 || ratio > 2.2 {
		t.Fatalf("contention ratio = %.2f, want ≈1.9", ratio)
	}
}

// --- LiveWorker ---

func TestLiveWorkerExecutesRealFunction(t *testing.T) {
	env := &workload.Env{} // CPU-bound functions need no services
	w, err := StartLiveWorker(LiveWorkerConfig{ID: "live-0", Env: env, BootDelay: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	f, err := workload.Get("CascSHA")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan core.Result, 1)
	w.RunJob(core.Job{ID: 5, Function: "CascSHA", Args: []byte(`{"rounds":10,"seed":"x"}`)},
		func(r core.Result) { done <- r })
	res := <-done
	if res.Err != "" {
		t.Fatalf("invocation failed: %s", res.Err)
	}
	if res.Boot < 10*time.Millisecond {
		t.Fatalf("boot delay %v not applied", res.Boot)
	}
	// Cross-check against a direct local invocation.
	direct, err := f.Run(env, []byte(`{"rounds":10,"seed":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != string(direct) {
		t.Fatalf("remote output %s != local %s", res.Output, direct)
	}
}

func TestLiveWorkerReportsFunctionError(t *testing.T) {
	w, err := StartLiveWorker(LiveWorkerConfig{ID: "live-1", Env: &workload.Env{}})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	done := make(chan core.Result, 1)
	w.RunJob(core.Job{ID: 1, Function: "MatMul", Args: []byte(`{"n":0}`)}, func(r core.Result) { done <- r })
	if res := <-done; res.Err == "" {
		t.Fatal("function error lost")
	}
}

func TestLiveWorkerMeterAccounting(t *testing.T) {
	meter := power.NewMeter()
	rt := core.NewWallRuntime()
	w, err := StartLiveWorker(LiveWorkerConfig{
		ID: "live-2", Env: &workload.Env{}, Meter: meter, Clock: rt.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	done := make(chan core.Result, 1)
	w.RunJob(core.Job{ID: 1, Function: "FloatOps", Args: []byte(`{"iterations":200000,"seed":0.5}`)},
		func(r core.Result) { done <- r })
	<-done
	if got := meter.Power("live-2"); got != 0.128 {
		t.Fatalf("post-job draw = %v, want off", got)
	}
	if meter.Energy("live-2", rt.Now()) <= 0 {
		t.Fatal("no energy accumulated")
	}
}

func TestLiveWorkerCloseIdempotent(t *testing.T) {
	w, err := StartLiveWorker(LiveWorkerConfig{ID: "live-3", Env: &workload.Env{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLiveWorkerConfigValidation(t *testing.T) {
	if _, err := StartLiveWorker(LiveWorkerConfig{Env: &workload.Env{}}); err == nil {
		t.Fatal("missing id accepted")
	}
	if _, err := StartLiveWorker(LiveWorkerConfig{ID: "x"}); err == nil {
		t.Fatal("missing env accepted")
	}
	if _, err := StartLiveWorker(LiveWorkerConfig{ID: "x", Env: &workload.Env{}, Meter: power.NewMeter()}); err == nil {
		t.Fatal("meter without clock accepted")
	}
}

func TestKeepWarmWindowSkipsBootThenExpires(t *testing.T) {
	e := sim.NewEngine(1)
	meter := power.NewMeter()
	w, err := NewSimWorker(SimWorkerConfig{
		ID: "sbc-kw", Platform: model.ARM, Engine: e, Meter: meter,
		KeepWarm: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	var boots []time.Duration
	run := func() {
		w.RunJob(core.Job{ID: int64(len(boots)), Function: "FloatOps"},
			func(r core.Result) { boots = append(boots, r.Boot) })
	}
	// Job 1: cold. A job cycle is ≈3 s, so running 8 s completes it while
	// the 10 s warm window (armed at completion) is still open.
	run()
	e.Run(8 * time.Second)
	if boots[0] == 0 {
		t.Fatal("first job must boot")
	}
	if got := meter.Power("sbc-kw"); got != power.DefaultSBCModel().IdleW {
		t.Fatalf("post-job draw = %v, want idle (parked warm)", got)
	}
	// Job 2 arrives within the window: warm start.
	run()
	e.Run(e.Now() + 8*time.Second)
	if boots[1] != 0 {
		t.Fatalf("second job booted (%v) despite warm window", boots[1])
	}
	if w.WarmStarts() != 1 || w.ColdStarts() != 1 {
		t.Fatalf("starts = %d cold / %d warm, want 1/1", w.ColdStarts(), w.WarmStarts())
	}
	// Let the window expire: the worker powers down...
	e.Run(e.Now() + 11*time.Second)
	if got := meter.Power("sbc-kw"); got != power.DefaultSBCModel().OffW {
		t.Fatalf("post-expiry draw = %v, want off", got)
	}
	// ...and the next job is cold again.
	run()
	e.Run(e.Now() + 8*time.Second)
	if boots[2] == 0 {
		t.Fatal("job after expiry must boot")
	}
}

func TestKeepWarmExpiryCancelledByNextJob(t *testing.T) {
	e := sim.NewEngine(1)
	meter := power.NewMeter()
	w, err := NewSimWorker(SimWorkerConfig{
		ID: "sbc-kw2", Platform: model.ARM, Engine: e, Meter: meter,
		KeepWarm: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	w.RunJob(core.Job{ID: 1, Function: "FloatOps"}, func(core.Result) { done++ })
	e.RunAll()
	// Second job arrives just inside the window; its completion must
	// re-arm a fresh window rather than letting the stale expiry fire
	// mid-job.
	w.RunJob(core.Job{ID: 2, Function: "CascSHA"}, func(core.Result) { done++ })
	e.Run(e.Now() + 5*time.Second)
	if got := meter.Power("sbc-kw2"); got == power.DefaultSBCModel().OffW {
		t.Fatal("stale keep-warm expiry powered the worker off mid-window")
	}
	e.RunAll()
	if done != 2 {
		t.Fatalf("completed %d jobs", done)
	}
}

// Property: the rack server is work-conserving and never finishes a task
// faster than its uncontended wall time.
func TestRackServerSchedulingProperty(t *testing.T) {
	type task struct {
		WorkDs  uint8 // deciseconds of cpu work, 1..25.5s
		DemandP uint8 // demand in percent of a core, 1..100
	}
	prop := func(raw []task) bool {
		if len(raw) == 0 || len(raw) > 40 {
			return true
		}
		e := sim.NewEngine(1)
		rs := NewRackServer("srv", 4, e, nil, power.DefaultServerModel())
		type res struct {
			work, demand float64
			doneAt       time.Duration
		}
		results := make([]res, len(raw))
		for i, r := range raw {
			work := float64(r.WorkDs%200+1) / 10
			demand := float64(r.DemandP%100+1) / 100
			results[i] = res{work: work, demand: demand}
			i := i
			rs.Run(work, demand, func() { results[i].doneAt = e.Now() })
		}
		e.RunAll()
		makespan := e.Now().Seconds()
		totalWork := 0.0
		for _, r := range results {
			totalWork += r.work
			// Never faster than uncontended.
			uncontended := r.work / r.demand
			if r.doneAt.Seconds() < uncontended-1e-6 {
				return false
			}
			if r.doneAt == 0 {
				return false // never completed
			}
		}
		// Work conservation: the 4 cores cannot deliver more cpu-seconds
		// than 4 × makespan.
		return totalWork <= 4*makespan+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: when total demand fits in the cores, every task finishes at
// exactly its uncontended time.
func TestRackServerUncontendedExactProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		e := sim.NewEngine(1)
		rs := NewRackServer("srv", 16, e, nil, power.DefaultServerModel()) // 8 tasks × ≤1 core always fits
		type res struct {
			uncontended float64
			doneAt      time.Duration
		}
		results := make([]res, len(raw))
		for i, r := range raw {
			work := float64(r%50+1) / 10
			demand := float64(r%99+1) / 100
			results[i] = res{uncontended: work / demand}
			i := i
			rs.Run(work, demand, func() { results[i].doneAt = e.Now() })
		}
		e.RunAll()
		for _, r := range results {
			if diff := r.doneAt.Seconds() - r.uncontended; diff < -1e-6 || diff > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFaultForcesPowerCycleDespiteKeepWarm(t *testing.T) {
	e := sim.NewEngine(1)
	w, err := NewSimWorker(SimWorkerConfig{
		ID: "sbc-fkw", Platform: model.ARM, Engine: e,
		KeepWarm: time.Hour, FailureRate: 1, // every job faults
	})
	if err != nil {
		t.Fatal(err)
	}
	var boots []time.Duration
	for i := 0; i < 2; i++ {
		w.RunJob(core.Job{ID: int64(i), Function: "FloatOps"},
			func(r core.Result) { boots = append(boots, r.Boot) })
		e.Run(e.Now() + 8*time.Second)
	}
	if len(boots) != 2 {
		t.Fatalf("completed %d jobs", len(boots))
	}
	if boots[1] == 0 {
		t.Fatal("worker stayed warm across a crash")
	}
	if w.WarmStarts() != 0 {
		t.Fatalf("crashed worker warm-started %d times", w.WarmStarts())
	}
}
