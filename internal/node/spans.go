package node

import (
	"time"

	"microfaas/internal/core"
	"microfaas/internal/tracing"
)

// recordSpan records one worker-side lifecycle span for the job. No-op
// when the tracer is nil or the job untraced, so disabled tracing costs a
// nil check — and callers guard their meter snapshots the same way, so no
// extra work happens either.
func recordSpan(tr *tracing.Tracer, job core.Job, phase tracing.Phase, worker string, start, end time.Duration, energyJ float64, detail, errMsg string) {
	if tr == nil || !job.Trace.Valid() {
		return
	}
	tr.Record(job.Trace, tracing.Span{
		Phase:    phase,
		Job:      job.ID,
		Function: job.Function,
		Worker:   worker,
		Attempt:  job.Attempt,
		Start:    start,
		End:      end,
		EnergyJ:  energyJ,
		Detail:   detail,
		Err:      errMsg,
	})
}
