package node

import (
	"fmt"
	"strconv"
	"time"

	"microfaas/internal/bootos"
	"microfaas/internal/core"
	"microfaas/internal/gpio"
	"microfaas/internal/model"
	"microfaas/internal/netsim"
	"microfaas/internal/power"
	"microfaas/internal/sim"
	"microfaas/internal/telemetry"
	"microfaas/internal/tracing"
)

// SimWorkerConfig assembles a discrete-event worker.
type SimWorkerConfig struct {
	// ID is the worker's (and meter device's) name, e.g. "sbc-03".
	ID string
	// Platform selects ARM (SBC) or X86 (microVM).
	Platform model.Platform
	// Link is the worker's last-hop network; defaults to the paper's
	// evaluation link for the platform (Fast Ethernet / bridged virtio).
	Link *netsim.Link
	// Engine drives virtual time (required).
	Engine *sim.Engine
	// Meter receives power accounting; optional. VM workers do not report
	// to the meter themselves — their host RackServer does.
	Meter *power.Meter
	// SBC is the power model for ARM workers (default power.DefaultSBCModel).
	SBC *power.SBCModel
	// Server hosts X86 workers; required for X86, must be nil for ARM.
	Server *RackServer
	// Jitter is the half-width of the uniform relative perturbation
	// applied to each phase duration (e.g. 0.05 → ±5 %).
	Jitter float64
	// BootTime overrides the worker-OS boot duration (default: the
	// bootos final profile for the platform).
	BootTime time.Duration
	// Specs overrides the function table (default: model.Functions()).
	// Ablations (crypto accelerator, GigE NIC, no-reboot) pass modified
	// copies here.
	Specs []model.FunctionSpec
	// DisableReboot is the no-reboot ablation: after the first job the
	// worker stays up and skips the boot phase (sacrificing the clean-
	// environment guarantee of Sec III-a).
	DisableReboot bool
	// FailureRate injects faults: each job independently fails with this
	// probability, crashing partway through execution (the OP's retry
	// policy is exercised against it). Zero disables injection.
	FailureRate float64
	// HangRate injects wedges: each job independently hangs with this
	// probability — the worker powers on and never reports back, so only
	// an OP-level deadline can rescue the job. Zero disables injection.
	HangRate float64
	// SlowRate injects straggling: each job independently runs SlowFactor
	// times slower with this probability (tail-latency and deadline
	// experiments). Zero disables injection.
	SlowRate float64
	// SlowFactor is the execution-time multiplier for SlowRate jobs
	// (default 10).
	SlowFactor float64
	// GPIO, when set, wires this worker's PWR_BUT to the OP's GPIO
	// controller (Sec IV-D) and logs every power-state transition there.
	// ARM workers only (the paper wires only the worker SBCs).
	GPIO *gpio.Controller
	// KeepWarm keeps the worker booted and idle (drawing idle power) for
	// this long after a job, so a prompt next job skips the boot. This is
	// the Firecracker-style warm-pool trade the paper's design refuses:
	// it cuts latency but sacrifices both the clean-environment guarantee
	// and some energy proportionality. Zero (the paper's policy) powers
	// down immediately. Ignored when DisableReboot is set (always warm).
	KeepWarm time.Duration
	// Managed hands the worker's power lifecycle to a powermgr.Manager:
	// the worker implements powermgr.Node (PowerUp boots it over the
	// modeled boot time, PowerDown gates it off), stays idle-warm between
	// jobs instead of power-cycling, and skips the in-job boot when warm
	// — the manager's wake already paid it, absorbed into the job's queue
	// wait. ARM only; mutually exclusive with DisableReboot and KeepWarm.
	Managed bool
	// Telemetry optionally receives boot/exec lifecycle events, boot and
	// fault-injection counters, and — for metered ARM workers — the
	// per-function joules attribution. Nil disables all of it with zero
	// overhead and leaves seeded runs bit-identical.
	Telemetry *telemetry.Telemetry
	// Tracer optionally records per-invocation boot/exec/reboot spans,
	// with per-span joules from meter snapshots at the span boundaries on
	// metered ARM workers. Nil disables with the same bit-identical
	// guarantee as Telemetry.
	Tracer *tracing.Tracer
}

// SimWorker is a discrete-event worker node implementing core.Worker.
type SimWorker struct {
	cfg       SimWorkerConfig
	link      netsim.Link
	sbc       power.SBCModel
	boot      time.Duration
	specs     map[string]model.FunctionSpec
	outputs   map[string][]byte // per-function canned payloads (read-only)
	warm      bool        // booted state survives to the next job
	state     power.State // current power state (ARM accounting)
	cycles    int
	hangs     int // injected wedges (jobs that never reported back)
	coldStart int        // jobs that paid the boot
	warmStart int        // jobs that skipped it
	powerOff  sim.Timer  // pending keep-warm expiry (zero when none)
	m         workerMetrics
}

// NewSimWorker validates the config and registers the worker with the
// meter (ARM workers start powered down).
func NewSimWorker(cfg SimWorkerConfig) (*SimWorker, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("node: worker needs an id")
	}
	if cfg.Engine == nil {
		return nil, fmt.Errorf("node: worker %s needs an engine", cfg.ID)
	}
	if cfg.Platform == model.X86 && cfg.Server == nil {
		return nil, fmt.Errorf("node: VM worker %s needs a rack server", cfg.ID)
	}
	if cfg.Platform == model.ARM && cfg.Server != nil {
		return nil, fmt.Errorf("node: SBC worker %s cannot have a rack server", cfg.ID)
	}
	w := &SimWorker{cfg: cfg}
	if cfg.Link != nil {
		w.link = *cfg.Link
	} else {
		w.link = model.DefaultWorkerLink(cfg.Platform)
	}
	if cfg.SBC != nil {
		w.sbc = *cfg.SBC
	} else {
		w.sbc = power.DefaultSBCModel()
	}
	if cfg.BootTime > 0 {
		w.boot = cfg.BootTime
	} else {
		w.boot = bootos.BootTime(cfg.Platform)
	}
	specs := cfg.Specs
	if specs == nil {
		specs = model.Functions()
	}
	w.specs = make(map[string]model.FunctionSpec, len(specs))
	w.outputs = make(map[string][]byte, len(specs))
	for _, s := range specs {
		w.specs[s.Name] = s
		// The simulated payload depends only on the function name, so one
		// shared, never-mutated []byte per function serves every job.
		w.outputs[s.Name] = []byte(fmt.Sprintf(`{"simulated":true,"function":%q}`, s.Name))
	}
	if cfg.Platform == model.X86 && cfg.GPIO != nil {
		return nil, fmt.Errorf("node: worker %s: GPIO power control wires worker SBCs only", cfg.ID)
	}
	if cfg.Managed {
		if cfg.Platform != model.ARM {
			return nil, fmt.Errorf("node: worker %s: power management gates worker SBCs only", cfg.ID)
		}
		if cfg.DisableReboot || cfg.KeepWarm > 0 {
			return nil, fmt.Errorf("node: worker %s: Managed excludes DisableReboot/KeepWarm (the manager owns the power policy)", cfg.ID)
		}
	}
	w.m = newWorkerMetrics(cfg.Telemetry, cfg.ID)
	w.state = power.Off
	if cfg.Platform == model.ARM && cfg.Meter != nil {
		cfg.Meter.Set(cfg.ID, w.sbc.Power(power.Off), cfg.Engine.Now())
	}
	if cfg.GPIO != nil {
		if _, err := cfg.GPIO.WireNext(cfg.ID); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// setState moves an ARM worker to a new power state, updating the meter
// and the GPIO controller's audit log.
func (w *SimWorker) setState(to power.State, cause string) {
	if w.cfg.Platform != model.ARM || to == w.state {
		return
	}
	now := w.cfg.Engine.Now()
	if w.cfg.Meter != nil {
		w.cfg.Meter.Set(w.cfg.ID, w.sbc.Power(to), now)
	}
	if w.cfg.GPIO != nil {
		if err := w.cfg.GPIO.Transition(w.cfg.ID, now, w.state, to, cause); err != nil {
			// Wiring and ordering are established at construction; a
			// failure here is a programming error in the simulation.
			panic(err)
		}
	}
	w.state = to
}

// setStateJob is setState with a lazily built "<prefix> (job <id>)" cause:
// the string is only materialized when a GPIO audit log will record it,
// and via strconv instead of fmt — these transitions run several times per
// simulated job, and fmt's reflection dominated the sim's alloc profile.
func (w *SimWorker) setStateJob(to power.State, prefix string, jobID int64) {
	if w.cfg.Platform != model.ARM || to == w.state {
		return
	}
	var cause string
	if w.cfg.GPIO != nil {
		var arr [64]byte
		buf := append(arr[:0], prefix...)
		buf = append(buf, " (job "...)
		buf = strconv.AppendInt(buf, jobID, 10)
		buf = append(buf, ')')
		cause = string(buf)
	}
	w.setState(to, cause)
}

// ID implements core.Worker.
func (w *SimWorker) ID() string { return w.cfg.ID }

// Cycles returns how many jobs the worker has completed.
func (w *SimWorker) Cycles() int { return w.cycles }

// Hangs returns how many injected wedges the worker has suffered.
func (w *SimWorker) Hangs() int { return w.hangs }

// jitter returns a multiplicative perturbation factor in
// [1-Jitter, 1+Jitter], drawn from the engine's deterministic source.
func (w *SimWorker) jitter() float64 {
	if w.cfg.Jitter <= 0 {
		return 1
	}
	return 1 + (w.cfg.Engine.Rand().Float64()*2-1)*w.cfg.Jitter
}

func perturb(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}

// RunJob implements core.Worker: power-on, boot, receive input, execute,
// return result, power down. All timing comes from the calibrated model.
func (w *SimWorker) RunJob(job core.Job, done func(core.Result)) {
	engine := w.cfg.Engine
	spec, ok := w.specs[job.Function]
	if !ok {
		engine.Schedule(0, func() {
			done(core.Result{
				Job: job, WorkerID: w.cfg.ID,
				Err:        fmt.Sprintf("node: unknown function %q", job.Function),
				StartedAt:  engine.Now(),
				FinishedAt: engine.Now(),
			})
		})
		return
	}
	boot := perturb(w.boot, w.jitter())
	if w.warm && (w.cfg.DisableReboot || w.cfg.KeepWarm > 0 || w.cfg.Managed) {
		boot = 0
	}
	w.powerOff.Cancel()
	w.powerOff = sim.Timer{}
	if boot == 0 {
		w.warmStart++
		w.m.bootsWarm.Inc()
	} else {
		w.coldStart++
		w.m.bootsCold.Inc()
	}
	overhead := perturb(spec.OverheadTime(w.cfg.Platform, w.link), w.jitter())
	exec := perturb(spec.ExecTime(w.cfg.Platform, w.link), w.jitter())
	fail := w.cfg.FailureRate > 0 && engine.Rand().Float64() < w.cfg.FailureRate
	if fail {
		// The fault strikes partway through execution; the OP sees a dead
		// worker and records the attempt as failed.
		exec = time.Duration(float64(exec) * engine.Rand().Float64())
		w.m.faultCrash.Inc()
	}
	if hang := w.cfg.HangRate > 0 && engine.Rand().Float64() < w.cfg.HangRate; hang {
		// The worker wedges mid-job: it powers on, draws busy power, and
		// never invokes done. Only an OP deadline can reclaim the job.
		w.hangs++
		w.m.faultHang.Inc()
		recordSpan(w.cfg.Tracer, job, tracing.PhaseFault, w.cfg.ID,
			engine.Now(), engine.Now(), 0, "injected-hang", "node: injected worker hang")
		w.warm = false
		w.setStateJob(power.Busy, "wedged", job.ID)
		return
	}
	if slow := w.cfg.SlowRate > 0 && engine.Rand().Float64() < w.cfg.SlowRate; slow {
		factor := w.cfg.SlowFactor
		if factor <= 0 {
			factor = 10
		}
		exec = time.Duration(float64(exec) * factor)
		w.m.faultSlow.Inc()
	}
	started := engine.Now()
	// Per-function energy: snapshot the meter now, bank the delta when the
	// job finishes. Only metered ARM workers attribute joules — an X86
	// microVM is not a metered device, its host rack server is.
	metered := w.cfg.Platform == model.ARM && w.cfg.Meter != nil
	var energyStart power.Joules
	if metered {
		energyStart = w.cfg.Meter.Energy(w.cfg.ID, started)
	}

	finish := func() {
		w.cycles++
		rebootDetail := "power-down"
		switch {
		case fail && w.cfg.Managed:
			// The environment is suspect but the manager owns the power
			// plane: go cold-idle and let the orchestrator's NoteFault
			// power-cycle the node through the manager.
			w.warm = false
			w.setState(power.Idle, "fault: awaiting power-cycle")
			rebootDetail = "fault-power-cycle"
		case fail:
			// A crashed worker cannot be trusted warm: the OP power-cycles
			// it regardless of the keep-warm/no-reboot policy.
			w.warm = false
			w.setState(power.Off, "fault: forced power-off")
			rebootDetail = "fault-power-off"
		default:
			w.afterJob()
			switch {
			case w.cfg.DisableReboot:
				rebootDetail = "stay-up"
			case w.cfg.KeepWarm > 0:
				rebootDetail = "keep-warm"
			case w.cfg.Managed:
				rebootDetail = "managed-idle"
			}
		}
		res := core.Result{
			Job: job, WorkerID: w.cfg.ID,
			Output:     w.outputs[job.Function],
			StartedAt:  started,
			FinishedAt: engine.Now(),
			Boot:       boot,
			Overhead:   overhead,
			Exec:       exec,
		}
		if fail {
			res.Err = "node: injected worker fault"
			res.Output = nil
		}
		if metered {
			// Crashed attempts are charged too: the joules were burned on
			// this function's behalf even if the result was lost. The
			// result carries the joules so the orchestrator can account
			// them against the function's energy budget.
			delta := w.cfg.Meter.Energy(w.cfg.ID, engine.Now()) - energyStart
			res.Joules = float64(delta)
			w.m.energy(job.Function).Add(float64(delta))
		}
		// The post-job power transition is instantaneous in the sim, so the
		// reboot span is a zero-length marker naming the policy applied.
		recordSpan(w.cfg.Tracer, job, tracing.PhaseReboot, w.cfg.ID,
			engine.Now(), engine.Now(), 0, rebootDetail, "")
		done(res)
	}

	if w.cfg.Platform == model.ARM {
		w.runARM(job, boot, overhead, exec, finish)
	} else {
		w.runX86(job, spec, boot, overhead, exec, finish)
	}
}

// afterJob applies the worker's post-job power policy: the paper's
// immediate power-down, DisableReboot's stay-up, KeepWarm's bounded idle
// window that expires into power-off, or Managed's stay-warm-idle (the
// power manager decides when the node actually powers off).
func (w *SimWorker) afterJob() {
	switch {
	case w.cfg.Managed:
		w.warm = true
		w.setState(power.Idle, "job done (managed idle)")
	case w.cfg.DisableReboot:
		w.warm = true
		w.setState(power.Idle, "job done (no-reboot ablation)")
	case w.cfg.KeepWarm > 0:
		w.warm = true
		w.setState(power.Idle, "job done (parked warm)")
		w.powerOff = w.cfg.Engine.Schedule(w.cfg.KeepWarm, func() {
			w.warm = false
			w.powerOff = sim.Timer{}
			w.setState(power.Off, "keep-warm window expired")
		})
	default: // the paper's policy
		w.warm = false
		w.setState(power.Off, "job done (power down)")
	}
}

// PowerUp implements powermgr.Node (managed mode): Off→Booting now,
// Booting→Idle (warm) after the worker's jittered boot time on the
// virtual clock, then ready fires on the engine thread. A node that is
// not Off boots nothing; ready is still scheduled (never synchronously —
// the manager may call PowerUp while holding locks the callback retakes).
func (w *SimWorker) PowerUp(cause string, ready func()) {
	engine := w.cfg.Engine
	if w.state != power.Off {
		if ready != nil {
			engine.Schedule(0, ready)
		}
		return
	}
	w.m.bootsCold.Inc()
	w.setState(power.Booting, cause)
	engine.Schedule(perturb(w.boot, w.jitter()), func() {
		w.warm = true
		w.setState(power.Idle, "boot complete (managed)")
		if ready != nil {
			ready()
		}
	})
}

// PowerDown implements powermgr.Node (managed mode): an Idle node goes
// Off (cold), logging the transition to the meter and the GPIO audit log;
// a Busy or Booting node refuses and reports false. Powering an Off node
// down is a true no-op.
func (w *SimWorker) PowerDown(cause string) bool {
	switch w.state {
	case power.Busy, power.Booting:
		return false
	case power.Off:
		return true
	}
	w.warm = false
	w.setState(power.Off, cause)
	return true
}

// ColdStarts and WarmStarts report how many jobs paid the boot versus
// skipped it (always cold under the paper's policy).
func (w *SimWorker) ColdStarts() int { return w.coldStart }

// WarmStarts reports boot-skipping job starts (keep-warm / no-reboot).
func (w *SimWorker) WarmStarts() int { return w.warmStart }

// traceJoules snapshots the worker's metered energy for span attribution.
// Zero when the job is untraced or the worker unmetered, so both
// boundaries of a span read zero and the span's energy stays zero.
func (w *SimWorker) traceJoules(job core.Job, now time.Duration) float64 {
	if w.cfg.Tracer == nil || !job.Trace.Valid() ||
		w.cfg.Platform != model.ARM || w.cfg.Meter == nil {
		return 0
	}
	return float64(w.cfg.Meter.Energy(w.cfg.ID, now))
}

// runARM chains the SBC's phases on the engine; nothing contends, so each
// phase is a plain delay with the right meter state. Boot and exec spans
// are recorded with contiguous boundaries (exec starts the instant boot
// ends) so a trace's phase durations telescope to its end-to-end latency,
// and with meter-snapshot energy deltas so its phase joules telescope to
// the invocation's metered energy.
func (w *SimWorker) runARM(job core.Job, boot, overhead, exec time.Duration, finish func()) {
	engine := w.cfg.Engine
	if boot > 0 {
		bootStart := engine.Now()
		e0 := w.traceJoules(job, bootStart)
		w.setStateJob(power.Booting, "PWR_BUT press", job.ID)
		w.m.event(bootStart, telemetry.EventBoot, job, w.cfg.ID, "cold")
		engine.Schedule(boot, func() {
			bootEnd := engine.Now()
			e1 := w.traceJoules(job, bootEnd)
			recordSpan(w.cfg.Tracer, job, tracing.PhaseBoot, w.cfg.ID,
				bootStart, bootEnd, e1-e0, "cold", "")
			w.setStateJob(power.Busy, "boot complete", job.ID)
			w.m.event(bootEnd, telemetry.EventExec, job, w.cfg.ID, "")
			engine.Schedule(overhead+exec, func() {
				end := engine.Now()
				recordSpan(w.cfg.Tracer, job, tracing.PhaseExec, w.cfg.ID,
					bootEnd, end, w.traceJoules(job, end)-e1, "overhead+exec", "")
				finish()
			})
		})
		return
	}
	// Warm start: already booted, straight to work.
	start := engine.Now()
	e0 := w.traceJoules(job, start)
	recordSpan(w.cfg.Tracer, job, tracing.PhaseBoot, w.cfg.ID, start, start, 0, "warm", "")
	w.setStateJob(power.Busy, "warm start", job.ID)
	w.m.event(start, telemetry.EventExec, job, w.cfg.ID, "warm")
	engine.Schedule(overhead+exec, func() {
		end := engine.Now()
		recordSpan(w.cfg.Tracer, job, tracing.PhaseExec, w.cfg.ID,
			start, end, w.traceJoules(job, end)-e0, "overhead+exec", "")
		finish()
	})
}

// runX86 runs the microVM's phases as rack-server CPU tasks: wall time
// stretches when the host's cores are oversubscribed.
func (w *SimWorker) runX86(job core.Job, spec model.FunctionSpec, boot, overhead, exec time.Duration, finish func()) {
	bootCPU := float64(boot) / float64(time.Second) * bootos.BootCPUFraction(model.X86)
	bootDemand := bootos.BootCPUFraction(model.X86)
	jobWall := overhead + exec
	jobCPU := spec.CPUTime(model.X86)
	// Demand so that uncontended wall time equals the calibrated total.
	demand := float64(jobCPU) / float64(jobWall)
	if demand > 1 {
		demand = 1 // a 1-vCPU microVM cannot exceed one core
	}
	cpuSeconds := demand * jobWall.Seconds()
	engine := w.cfg.Engine
	// A microVM is not a metered device (its host rack server is), so its
	// spans carry zero joules — host energy is attributed at cluster level.
	runExec := func(from time.Duration) {
		w.cfg.Server.Run(cpuSeconds, demand, func() {
			recordSpan(w.cfg.Tracer, job, tracing.PhaseExec, w.cfg.ID,
				from, engine.Now(), 0, "overhead+exec", "")
			finish()
		})
	}
	if boot == 0 {
		start := engine.Now()
		recordSpan(w.cfg.Tracer, job, tracing.PhaseBoot, w.cfg.ID, start, start, 0, "warm", "")
		w.m.event(start, telemetry.EventExec, job, w.cfg.ID, "warm")
		runExec(start)
		return
	}
	bootStart := engine.Now()
	w.m.event(bootStart, telemetry.EventBoot, job, w.cfg.ID, "cold")
	w.cfg.Server.Run(bootCPU, bootDemand, func() {
		bootEnd := engine.Now()
		recordSpan(w.cfg.Tracer, job, tracing.PhaseBoot, w.cfg.ID,
			bootStart, bootEnd, 0, "cold", "")
		w.m.event(bootEnd, telemetry.EventExec, job, w.cfg.ID, "")
		runExec(bootEnd)
	})
}
