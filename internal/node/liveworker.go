package node

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"microfaas/internal/core"
	"microfaas/internal/gpio"
	"microfaas/internal/power"
	"microfaas/internal/proto"
	"microfaas/internal/telemetry"
	"microfaas/internal/tracing"
	"microfaas/internal/workload"
)

// FaultSpec injects worker-side faults into a live worker, making the
// OP's failure path testable end-to-end over the real TCP protocol. Each
// invocation independently draws its fate from a seeded RNG: hang (hold
// the connection open and never reply — only the OP's deadline rescues
// the job), error (reply with an injected failure), or slow (delay the
// reply by SlowDelay). Probabilities are evaluated in that order.
type FaultSpec struct {
	// Seed drives the fault draws (a per-worker seed keeps runs
	// reproducible).
	Seed int64
	// HangProb is the probability an invocation wedges forever.
	HangProb float64
	// ErrorProb is the probability an invocation fails with an injected
	// error.
	ErrorProb float64
	// SlowProb is the probability an invocation is delayed by SlowDelay
	// before executing.
	SlowProb float64
	// SlowDelay is the injected straggler delay (default 1s).
	SlowDelay time.Duration
}

// LiveWorkerConfig assembles a live worker: a real TCP server executing
// the real Go workload functions.
type LiveWorkerConfig struct {
	// ID names the worker (and its meter device).
	ID string
	// Env provides the backing-service addresses.
	Env *workload.Env
	// BootDelay simulates the worker-OS reboot before each job. The
	// BeagleBone value is 1.51 s; tests usually shrink or zero it.
	BootDelay time.Duration
	// Meter optionally receives wall-clock power accounting using Clock.
	Meter *power.Meter
	// SBC is the power model used with Meter (default DefaultSBCModel).
	SBC *power.SBCModel
	// Clock is the cluster clock for meter timestamps (required when
	// Meter is set); typically core.WallRuntime.Now.
	Clock func() time.Duration
	// InvokeTimeout bounds one invocation round trip (default 2 minutes).
	InvokeTimeout time.Duration
	// Faults, when set, injects hang/error/slow faults into this worker's
	// invocations (see FaultSpec).
	Faults *FaultSpec
	// Telemetry optionally receives boot/exec lifecycle events, boot and
	// fault-injection counters, and — when Meter is set — per-function
	// joules attribution. Events stamped on the worker's server side carry
	// attempt 0: the attempt number does not travel the wire.
	Telemetry *telemetry.Telemetry
	// Tracer optionally records worker-side boot/exec spans. The trace
	// context arrives over the wire protocol (proto.Request.TraceID), so
	// the server side of the worker joins the OP's trace exactly the way a
	// remote SBC would. Span timestamps use Clock, so set a cluster clock
	// when tracing.
	Tracer *tracing.Tracer
	// Managed hands the worker's power lifecycle to a powermgr.Manager:
	// the worker implements powermgr.Node (PowerUp sleeps BootDelay on
	// the wall clock as the modeled boot, PowerDown gates it off), tracks
	// a modeled power state (Off/Booting/Idle/Busy) for the meter and the
	// GPIO audit log, and skips the per-job reboot — the manager's wake
	// already paid it. Requires Clock.
	Managed bool
	// GPIO, when set with Managed, wires this worker into the power
	// manager's audit log: every modeled power-state transition is
	// recorded there with wall-clock timestamps, the live counterpart of
	// the sim's Fig 5 power timeline.
	GPIO *gpio.Controller
}

// liveJob is one dispatch queued to the worker's invoker goroutine.
type liveJob struct {
	job  core.Job
	done func(core.Result)
}

// LiveWorker implements core.Worker by serving the invocation protocol on
// a real TCP listener and executing internal/workload functions. The OP
// side holds one persistent multiplexed connection (proto.Conn) to the
// worker for its whole life — dialed lazily, redialed after faults or
// power cycles — so steady-state invocations pay framing and execution
// but no per-job dial or goroutine spawn. The full protocol path —
// framed request, execution, framed response — still runs over real TCP.
type LiveWorker struct {
	cfg  LiveWorkerConfig
	sbc  power.SBCModel
	ln   net.Listener
	addr string
	m    workerMetrics
	quit chan struct{} // closed on Close; releases hung invocations
	pc   *proto.Conn   // the OP's persistent connection to this worker
	jobs chan liveJob  // RunJob → invokeLoop handoff

	mu     sync.Mutex
	closed bool
	rng    *rand.Rand  // fault draws; guarded by mu
	state  power.State // modeled power state (managed mode); guarded by mu
	wg     sync.WaitGroup
}

// StartLiveWorker binds the worker's TCP endpoint and begins serving.
func StartLiveWorker(cfg LiveWorkerConfig) (*LiveWorker, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("node: live worker needs an id")
	}
	if cfg.Env == nil {
		return nil, fmt.Errorf("node: live worker %s needs a workload env", cfg.ID)
	}
	if cfg.Meter != nil && cfg.Clock == nil {
		return nil, fmt.Errorf("node: live worker %s has a meter but no clock", cfg.ID)
	}
	if cfg.Managed && cfg.Clock == nil {
		return nil, fmt.Errorf("node: managed live worker %s needs a clock", cfg.ID)
	}
	if cfg.GPIO != nil && !cfg.Managed {
		return nil, fmt.Errorf("node: live worker %s: GPIO audit logging requires managed mode", cfg.ID)
	}
	w := &LiveWorker{cfg: cfg, quit: make(chan struct{}), state: power.Off}
	w.m = newWorkerMetrics(cfg.Telemetry, cfg.ID)
	if cfg.Faults != nil {
		w.rng = rand.New(rand.NewSource(cfg.Faults.Seed))
	}
	if cfg.SBC != nil {
		w.sbc = *cfg.SBC
	} else {
		w.sbc = power.DefaultSBCModel()
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("node: live worker %s: %w", cfg.ID, err)
	}
	w.ln = ln
	w.addr = ln.Addr().String()
	if cfg.Meter != nil {
		cfg.Meter.Set(cfg.ID, w.sbc.Power(power.Off), cfg.Clock())
	}
	if cfg.GPIO != nil {
		if _, err := cfg.GPIO.WireNext(cfg.ID); err != nil {
			ln.Close() //nolint:errcheck
			return nil, err
		}
	}
	w.pc = proto.NewConn(w.addr)
	w.jobs = make(chan liveJob, 1)
	w.wg.Add(2)
	go w.acceptLoop()
	go w.invokeLoop()
	return w, nil
}

// ID implements core.Worker.
func (w *LiveWorker) ID() string { return w.cfg.ID }

// now reads the cluster clock; without one, events stamp as 0.
func (w *LiveWorker) now() time.Duration {
	if w.cfg.Clock != nil {
		return w.cfg.Clock()
	}
	return 0
}

// Addr returns the worker's TCP endpoint.
func (w *LiveWorker) Addr() string { return w.addr }

// Close stops the worker's listener and waits for in-flight handlers.
func (w *LiveWorker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	close(w.quit) // release invocations wedged by fault injection
	w.pc.Close()  // settle in-flight invokes so the invoker can drain
	err := w.ln.Close()
	w.wg.Wait()
	return err
}

// setState moves the modeled power state (managed mode only).
func (w *LiveWorker) setState(to power.State, cause string) {
	w.mu.Lock()
	w.setStateLocked(to, cause)
	w.mu.Unlock()
}

// setStateLocked records a modeled power-state transition: it repoints the
// meter at the new state's draw and appends to the GPIO audit log. Same-
// state calls are no-ops. Callers hold w.mu. Timestamps come from the
// cluster clock; the audit log uses the monotone-clamping variant because
// concurrent wall-clock callers can race to the controller's lock.
func (w *LiveWorker) setStateLocked(to power.State, cause string) {
	if w.state == to {
		return
	}
	from := w.state
	w.state = to
	now := w.now()
	if w.cfg.Meter != nil {
		w.cfg.Meter.Set(w.cfg.ID, w.sbc.Power(to), now)
	}
	if w.cfg.GPIO != nil {
		w.cfg.GPIO.TransitionMonotone(w.cfg.ID, now, from, to, cause) //nolint:errcheck // wired at start; clamp keeps the log monotone
	}
}

// PowerUp implements powermgr.Node: it models the GPIO-triggered boot by
// holding the worker in Booting for BootDelay of wall-clock time, then
// settling to Idle and invoking ready. ready always runs from a fresh
// goroutine or timer — never synchronously — because the manager calls
// PowerUp while holding both its own and the orchestrator's locks. An
// already-powered worker skips straight to ready.
func (w *LiveWorker) PowerUp(cause string, ready func()) {
	w.mu.Lock()
	if w.state != power.Off {
		w.mu.Unlock()
		if ready != nil {
			go ready()
		}
		return
	}
	w.m.bootsCold.Inc()
	w.setStateLocked(power.Booting, cause)
	w.mu.Unlock()
	time.AfterFunc(w.cfg.BootDelay, func() {
		w.mu.Lock()
		if w.state == power.Booting {
			w.setStateLocked(power.Idle, "boot complete (managed)")
		}
		w.mu.Unlock()
		if ready != nil {
			ready()
		}
	})
}

// PowerDown implements powermgr.Node: it gates the worker off when safely
// idle. A Busy or Booting worker refuses (returns false) and the manager
// leaves it up; an already-off worker reports success without logging. A
// successful power-down also drops the OP's persistent connection — a
// gated-off SBC cannot hold a TCP session — so the next dispatch redials
// against the freshly booted node.
func (w *LiveWorker) PowerDown(cause string) bool {
	w.mu.Lock()
	switch w.state {
	case power.Busy, power.Booting:
		w.mu.Unlock()
		return false
	case power.Off:
		w.mu.Unlock()
		return true
	}
	w.setStateLocked(power.Off, cause)
	w.mu.Unlock()
	w.pc.Reset(fmt.Sprintf("power-cycled (%s)", cause))
	return true
}

// faultAction is the fate fault injection deals one invocation.
type faultAction int

const (
	faultNone faultAction = iota
	faultHang
	faultError
	faultSlow
)

// drawFault rolls the worker's fault dice for one invocation.
func (w *LiveWorker) drawFault() faultAction {
	f := w.cfg.Faults
	if f == nil {
		return faultNone
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if f.HangProb > 0 && w.rng.Float64() < f.HangProb {
		return faultHang
	}
	if f.ErrorProb > 0 && w.rng.Float64() < f.ErrorProb {
		return faultError
	}
	if f.SlowProb > 0 && w.rng.Float64() < f.SlowProb {
		return faultSlow
	}
	return faultNone
}

func (w *LiveWorker) acceptLoop() {
	defer w.wg.Done()
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			return
		}
		w.wg.Add(1)
		go func(c net.Conn) {
			defer w.wg.Done()
			defer c.Close()
			w.serveConn(c)
		}(conn)
	}
}

// serveConn handles invocations on one connection sequentially until the
// peer hangs up. The persistent session is the OP's management plane; the
// worker itself stays single-tenant and run-to-completion — each request
// pays the modeled reboot (unless managed) and builds all of its state
// from scratch, the Go equivalent of the prototype's reboot-to-initramfs
// reproducible environment. The request frame is the dispatch signal, so
// the boot is modeled after the frame arrives (with per-job connections
// the connect itself carried that signal).
func (w *LiveWorker) serveConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var scratch []byte
	for {
		req, err := proto.ReadRequest(br, &scratch)
		if err != nil {
			return
		}
		recvAt := time.Now()
		resp, replied := w.handleRequest(req, recvAt)
		if !replied {
			// A wedged node: the TCP peer is alive but the reply never
			// comes — and neither does any later reply on this session.
			// The OP's deadline fires first; its invoke timeout drops the
			// connection and the next dispatch redials fresh.
			<-w.quit
			return
		}
		if err := proto.WriteResponse(bw, req, resp); err != nil {
			return
		}
	}
}

// handleRequest executes one invocation: fault draw, the simulated reboot,
// then real function execution. It reports replied=false when fault
// injection wedged the invocation (the caller must never answer).
func (w *LiveWorker) handleRequest(req proto.Request, recvAt time.Time) (resp proto.Response, replied bool) {
	fault := w.drawFault()
	switch fault {
	case faultHang:
		w.m.faultHang.Inc()
		return proto.Response{}, false
	case faultError:
		w.m.faultError.Inc()
	case faultSlow:
		w.m.faultSlow.Inc()
	}
	// overheadIn is the protocol overhead between the request frame's
	// arrival and the start of the modeled cycle. With a persistent
	// session this is decode + dispatch only — the dial/accept cost that
	// used to dominate it is paid once per connection, not per job.
	overheadIn := time.Since(recvAt)
	// Every live invocation pays the simulated reboot: the paper's policy,
	// so every start is cold. Managed workers skip it — the power
	// manager's wake already paid the boot before the job was dispatched,
	// so the job lands warm.
	bootStart := time.Now()
	bootStartC := w.now()
	bootDetail := "cold"
	if w.cfg.Managed {
		w.m.bootsWarm.Inc()
		bootDetail = "warm"
	} else {
		w.m.bootsCold.Inc()
		if w.cfg.BootDelay > 0 {
			time.Sleep(w.cfg.BootDelay)
		}
	}
	boot := time.Since(bootStart)
	bootEndC := w.now()
	ctx := tracing.ContextFromWire(req.TraceID, req.ParentSpan)
	w.traceSpan(ctx, req, tracing.PhaseBoot, bootStartC, bootEndC, bootDetail)
	w.m.rawEvent(w.now(), telemetry.EventBoot, req.JobID, req.Function, w.cfg.ID, bootDetail)
	if fault == faultError {
		return proto.Response{
			Err:    fmt.Sprintf("node: injected worker fault on %s", w.cfg.ID),
			BootMs: float64(boot) / float64(time.Millisecond),
		}, true
	}
	if fault == faultSlow {
		delay := w.cfg.Faults.SlowDelay
		if delay <= 0 {
			delay = time.Second
		}
		select {
		case <-time.After(delay):
		case <-w.quit:
			return proto.Response{Err: "node: worker shut down mid-job"}, true
		}
	}
	execStart := time.Now()
	w.m.rawEvent(w.now(), telemetry.EventExec, req.JobID, req.Function, w.cfg.ID, "")
	out, err := workload.Invoke(w.cfg.Env, req.Function, req.Args)
	exec := time.Since(execStart)
	// The exec span starts where the boot span ended, covering any
	// injected delay and the execution itself.
	w.traceSpan(ctx, req, tracing.PhaseExec, bootEndC, w.now(), "overhead+exec")
	resp = proto.Response{
		Output:     out,
		BootMs:     float64(boot) / float64(time.Millisecond),
		OverheadMs: float64(overheadIn) / float64(time.Millisecond),
		ExecMs:     float64(exec) / float64(time.Millisecond),
	}
	if err != nil {
		resp.Err = err.Error()
		resp.Output = nil
	}
	return resp, true
}

// traceSpan records one worker-side span under the wire-delivered trace
// context, with the phase's metered joules when the worker has a meter.
func (w *LiveWorker) traceSpan(ctx tracing.Context, req proto.Request, phase tracing.Phase, start, end time.Duration, detail string) {
	if w.cfg.Tracer == nil || !ctx.Valid() {
		return
	}
	var energy float64
	if w.cfg.Meter != nil {
		energy = float64(w.cfg.Meter.Energy(w.cfg.ID, end) - w.cfg.Meter.Energy(w.cfg.ID, start))
	}
	w.cfg.Tracer.Record(ctx, tracing.Span{
		Phase:    phase,
		Job:      req.JobID,
		Function: req.Function,
		Worker:   w.cfg.ID,
		Attempt:  req.Attempt,
		Start:    start,
		End:      end,
		EnergyJ:  energy,
		Detail:   detail,
	})
}

// RunJob implements core.Worker: it hands the job to the worker's
// long-lived invoker goroutine, which performs the invocation over the
// persistent TCP connection (the OP side of the exchange). The handoff is
// allocation-free; after Close, jobs settle immediately with an error.
func (w *LiveWorker) RunJob(job core.Job, done func(core.Result)) {
	select {
	case w.jobs <- liveJob{job: job, done: done}:
	case <-w.quit:
		done(core.Result{Job: job, WorkerID: w.cfg.ID, Err: "node: worker closed"})
	}
}

// invokeLoop is the OP-side invoker: one goroutine per worker, alive for
// the worker's lifetime, replacing the per-job goroutine spawn. The
// orchestrator dispatches at most one job at a time per worker, so a
// single loop never delays a job.
func (w *LiveWorker) invokeLoop() {
	defer w.wg.Done()
	for {
		select {
		case lj := <-w.jobs:
			w.invoke(lj.job, lj.done)
		case <-w.quit:
			// Settle anything that raced into the queue before the close.
			for {
				select {
				case lj := <-w.jobs:
					lj.done(core.Result{Job: lj.job, WorkerID: w.cfg.ID, Err: "node: worker closed"})
				default:
					return
				}
			}
		}
	}
}

// invoke performs one invocation over the persistent connection and
// settles it through done exactly once.
func (w *LiveWorker) invoke(job core.Job, done func(core.Result)) {
	timeout := w.cfg.InvokeTimeout
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	var started time.Duration
	var energyStart power.Joules
	if w.cfg.Meter != nil || w.cfg.Managed {
		started = w.cfg.Clock()
	}
	if w.cfg.Meter != nil {
		energyStart = w.cfg.Meter.Energy(w.cfg.ID, started)
	}
	if w.cfg.Managed {
		w.setState(power.Busy, fmt.Sprintf("exec (job %d)", job.ID))
	} else if w.cfg.Meter != nil {
		w.cfg.Meter.Set(w.cfg.ID, w.sbc.Power(power.Busy), started)
	}
	traceID, parentSpan := job.Trace.Wire()
	resp, err := w.pc.Invoke(proto.Request{
		JobID: job.ID, Function: job.Function, Args: job.Args,
		TraceID: traceID, ParentSpan: parentSpan, Attempt: job.Attempt,
	}, timeout)
	res := core.Result{Job: job, WorkerID: w.cfg.ID, StartedAt: started}
	if err != nil {
		res.Err = err.Error()
	} else {
		res.Output = resp.Output
		res.Err = resp.Err
		res.Boot = resp.Boot()
		res.Overhead = resp.Overhead()
		res.Exec = resp.Exec()
	}
	if w.cfg.Meter != nil || w.cfg.Managed {
		now := w.cfg.Clock()
		res.FinishedAt = now
		if w.cfg.Managed {
			// The manager decides when the worker powers off; the job
			// just hands the node back to idle draw.
			w.setState(power.Idle, "job done (managed idle)")
		} else if w.cfg.Meter != nil {
			w.cfg.Meter.Set(w.cfg.ID, w.sbc.Power(power.Off), now)
		}
		if w.cfg.Meter != nil {
			// Failed attempts are charged too: the joules were burned on
			// this function's behalf even if the result was lost.
			delta := w.cfg.Meter.Energy(w.cfg.ID, now) - energyStart
			res.Joules = float64(delta)
			w.m.energy(job.Function).Add(float64(delta))
		}
	}
	done(res)
}
