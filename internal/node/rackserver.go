// Package node implements the cluster's worker nodes in both execution
// modes: discrete-event simulated SBC and microVM workers (with a
// processor-sharing rack-server contention model), and live TCP workers
// that execute the real Go workload functions.
package node

import (
	"fmt"
	"math"
	"time"

	"microfaas/internal/power"
	"microfaas/internal/sim"
)

// RackServer models the conventional cluster's host: a fixed number of
// cores shared by its VMs under processor sharing, plus the utilization-
// dependent power draw of internal/power.ServerModel.
//
// Each VM phase (boot, job) is a cpu task with a total CPU work amount and
// a maximum consumption rate ("demand", at most one core for a 1-vCPU VM).
// While total demand fits in the cores, every task runs at its demand and
// wall time equals the calibrated uncontended duration; past saturation,
// all tasks slow proportionally — which produces Fig 4's throughput
// plateau without any further tuning.
type RackServer struct {
	id     string
	cores  float64
	engine *sim.Engine
	meter  *power.Meter
	model  power.ServerModel

	// tasks holds the running tasks in admission order. A slice, not a
	// map: rebalance sums demand and (re)schedules completion events while
	// iterating, so randomized map order would perturb the float sum's
	// last ULP and the engine's same-instant seq tiebreaks from run to
	// run, breaking bit-exact determinism.
	tasks      []*cpuTask
	lastUpdate time.Duration
}

type cpuTask struct {
	demand    float64 // max rate in cores
	remaining float64 // cpu-seconds left
	rate      float64 // current rate in cores
	done      func()
	event     sim.Timer
}

// NewRackServer registers the server with the meter (it idles immediately).
func NewRackServer(id string, cores int, engine *sim.Engine, meter *power.Meter, model power.ServerModel) *RackServer {
	if cores <= 0 {
		panic(fmt.Sprintf("node: rack server needs cores, got %d", cores))
	}
	rs := &RackServer{
		id:     id,
		cores:  float64(cores),
		engine: engine,
		meter:  meter,
		model:  model,
	}
	if meter != nil {
		meter.Set(id, model.Power(0), engine.Now())
	}
	return rs
}

// ID returns the meter device id.
func (rs *RackServer) ID() string { return rs.id }

// Utilization returns the current fraction of cores in use (capped at 1).
func (rs *RackServer) Utilization() float64 {
	demand := 0.0
	for _, t := range rs.tasks {
		demand += t.demand
	}
	return math.Min(demand, rs.cores) / rs.cores
}

// Run schedules a CPU task of cpuSeconds total work consumed at up to
// demand cores; done fires when the work completes. A task with no CPU
// work completes after a zero-length event (still asynchronously).
func (rs *RackServer) Run(cpuSeconds, demand float64, done func()) {
	if cpuSeconds < 0 || demand <= 0 {
		panic(fmt.Sprintf("node: bad cpu task (%v cpu-s at %v cores)", cpuSeconds, demand))
	}
	if cpuSeconds == 0 {
		rs.engine.Schedule(0, done)
		return
	}
	rs.advance()
	t := &cpuTask{demand: demand, remaining: cpuSeconds, done: done}
	rs.tasks = append(rs.tasks, t)
	rs.rebalance()
}

// advance banks progress for all running tasks up to now.
func (rs *RackServer) advance() {
	now := rs.engine.Now()
	dt := (now - rs.lastUpdate).Seconds()
	if dt > 0 {
		for _, t := range rs.tasks {
			t.remaining -= t.rate * dt
			if t.remaining < 0 {
				t.remaining = 0
			}
		}
	}
	rs.lastUpdate = now
}

// rebalance recomputes per-task rates, reschedules completion events, and
// updates the power meter. Call only after advance().
func (rs *RackServer) rebalance() {
	demand := 0.0
	for _, t := range rs.tasks {
		demand += t.demand
	}
	scale := 1.0
	if demand > rs.cores {
		scale = rs.cores / demand
	}
	for _, t := range rs.tasks {
		t.rate = t.demand * scale
		t.event.Cancel()
		t := t
		eta := time.Duration(t.remaining / t.rate * float64(time.Second))
		t.event = rs.engine.Schedule(eta, func() { rs.complete(t) })
	}
	if rs.meter != nil {
		util := math.Min(demand, rs.cores) / rs.cores
		rs.meter.Set(rs.id, rs.model.Power(util), rs.engine.Now())
	}
}

func (rs *RackServer) complete(t *cpuTask) {
	rs.advance()
	for i, cur := range rs.tasks {
		if cur == t {
			rs.tasks = append(rs.tasks[:i], rs.tasks[i+1:]...)
			break
		}
	}
	rs.rebalance()
	t.done()
}
