package trace

import (
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func rec(fn string, exec, ovh time.Duration, err string) Record {
	return Record{Function: fn, Exec: exec, Overhead: ovh, Err: err,
		Submitted: 0, Started: time.Second, Finished: time.Second + exec + ovh}
}

func TestRecordDerivedTimes(t *testing.T) {
	r := Record{Boot: time.Second, Overhead: 100 * time.Millisecond,
		Exec: 2 * time.Second, Submitted: time.Second, Finished: 5 * time.Second}
	if r.Total() != 3100*time.Millisecond {
		t.Fatalf("Total = %v", r.Total())
	}
	if r.Latency() != 4*time.Second {
		t.Fatalf("Latency = %v", r.Latency())
	}
}

func TestByFunctionMeans(t *testing.T) {
	c := NewCollector()
	c.Add(rec("A", 100*time.Millisecond, 10*time.Millisecond, ""))
	c.Add(rec("A", 300*time.Millisecond, 30*time.Millisecond, ""))
	c.Add(rec("B", time.Second, 0, ""))
	stats := c.ByFunction()
	if len(stats) != 2 || stats[0].Function != "A" || stats[1].Function != "B" {
		t.Fatalf("stats = %+v", stats)
	}
	a := stats[0]
	if a.Count != 2 || a.MeanExec != 200*time.Millisecond || a.MeanOverhead != 20*time.Millisecond {
		t.Fatalf("A stats = %+v", a)
	}
	if a.MeanTotal != 220*time.Millisecond {
		t.Fatalf("A mean total = %v", a.MeanTotal)
	}
}

func TestErrorsExcludedFromMeans(t *testing.T) {
	c := NewCollector()
	c.Add(rec("A", 100*time.Millisecond, 0, ""))
	c.Add(rec("A", time.Hour, 0, "boom"))
	stats := c.ByFunction()
	if stats[0].Errors != 1 || stats[0].Count != 2 {
		t.Fatalf("stats = %+v", stats[0])
	}
	if stats[0].MeanExec != 100*time.Millisecond {
		t.Fatalf("failed invocation polluted the mean: %v", stats[0].MeanExec)
	}
	if c.ErrorCount() != 1 {
		t.Fatalf("ErrorCount = %d", c.ErrorCount())
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{5, 1, 4, 2, 3}
	if got := Percentile(ds, 50); got != 3 {
		t.Fatalf("P50 = %v", got)
	}
	if got := Percentile(ds, 100); got != 5 {
		t.Fatalf("P100 = %v", got)
	}
	if got := Percentile(ds, 0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty P50 = %v", got)
	}
	// Input must not be mutated.
	if ds[0] != 5 {
		t.Fatal("Percentile sorted its input in place")
	}
}

func TestPercentileRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Percentile([]time.Duration{1}, 101)
}

// Property: the percentile is always an element of the input and is
// monotone in p.
func TestPercentileProperty(t *testing.T) {
	prop := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		ds := make([]time.Duration, len(raw))
		for i, v := range raw {
			ds[i] = time.Duration(v)
		}
		p := float64(pRaw % 101)
		got := Percentile(ds, p)
		found := false
		for _, d := range ds {
			if d == got {
				found = true
				break
			}
		}
		if !found {
			return false
		}
		sorted := append([]time.Duration(nil), ds...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return Percentile(ds, 0) == sorted[0] && Percentile(ds, 100) == sorted[len(sorted)-1]
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThroughput(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 60; i++ {
		c.Add(Record{Function: "A", Finished: time.Duration(i) * time.Second})
	}
	// 60 completions in the first minute (t=0..59s) and window [0,60s].
	got := c.Throughput(0, time.Minute)
	if got != 60 {
		t.Fatalf("Throughput = %v func/min, want 60", got)
	}
	// Errors excluded.
	c.Add(Record{Function: "A", Finished: 30 * time.Second, Err: "x"})
	if c.Throughput(0, time.Minute) != 60 {
		t.Fatal("failed invocation counted in throughput")
	}
	if c.Throughput(time.Minute, time.Minute) != 0 {
		t.Fatal("empty window must be 0")
	}
}

func TestWriteCSV(t *testing.T) {
	c := NewCollector()
	c.Add(Record{JobID: 7, Function: "CascSHA", Worker: "sbc-3",
		Boot: 1510 * time.Millisecond, Exec: 2 * time.Second, Err: ""})
	var sb strings.Builder
	if err := c.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "job_id,") {
		t.Fatalf("missing header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "CascSHA") || !strings.Contains(lines[1], "1510.000") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestCollectorConcurrentAdd(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Add(rec("A", time.Millisecond, 0, ""))
			}
		}()
	}
	wg.Wait()
	if c.Len() != 800 {
		t.Fatalf("Len = %d, want 800", c.Len())
	}
}

func TestRecordsReturnsCopy(t *testing.T) {
	c := NewCollector()
	c.Add(rec("A", time.Millisecond, 0, ""))
	rs := c.Records()
	rs[0].Function = "mutated"
	if c.Records()[0].Function != "A" {
		t.Fatal("Records leaked internal storage")
	}
}

// TestPercentileDegenerateInputs pins the documented edge behavior: an
// empty slice reads 0 at every p, and a single-element slice reads that
// element at every p (including p=0, which rounds up to rank 1).
func TestPercentileDegenerateInputs(t *testing.T) {
	cases := []struct {
		name string
		ds   []time.Duration
		p    float64
		want time.Duration
	}{
		{"empty p0", nil, 0, 0},
		{"empty p50", nil, 50, 0},
		{"empty p100", nil, 100, 0},
		{"empty non-nil p99", []time.Duration{}, 99, 0},
		{"single p0", []time.Duration{7 * time.Millisecond}, 0, 7 * time.Millisecond},
		{"single p50", []time.Duration{7 * time.Millisecond}, 50, 7 * time.Millisecond},
		{"single p99.9", []time.Duration{7 * time.Millisecond}, 99.9, 7 * time.Millisecond},
		{"single p100", []time.Duration{7 * time.Millisecond}, 100, 7 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := Percentile(tc.ds, tc.p); got != tc.want {
			t.Errorf("%s: Percentile = %v, want %v", tc.name, got, tc.want)
		}
	}
}
