package trace

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramShapeValidation(t *testing.T) {
	for _, bad := range [][3]any{
		{time.Duration(0), time.Second, 5},
		{time.Second, time.Second, 5},
		{time.Millisecond, time.Second, 0},
	} {
		if _, err := NewHistogram(bad[0].(time.Duration), bad[1].(time.Duration), bad[2].(int)); err == nil {
			t.Fatalf("accepted shape %v", bad)
		}
	}
}

func TestHistogramBucketsAndOverflow(t *testing.T) {
	h, err := NewHistogram(time.Millisecond, time.Second, 4)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(500 * time.Microsecond) // below lo → first bucket
	h.Observe(time.Millisecond)       // exactly lo → first bucket
	h.Observe(900 * time.Millisecond) // last bounded bucket
	h.Observe(2 * time.Second)        // overflow
	if h.Total() != 4 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.counts[0] != 2 {
		t.Fatalf("first bucket = %d, want 2", h.counts[0])
	}
	if h.counts[len(h.counts)-1] != 1 {
		t.Fatalf("overflow = %d, want 1", h.counts[len(h.counts)-1])
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h, err := NewHistogram(time.Millisecond, time.Second, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h.Observe(10 * time.Millisecond)
	}
	h.Observe(5 * time.Second) // one outlier in overflow
	p50 := h.Quantile(0.5)
	if p50 > 50*time.Millisecond {
		t.Fatalf("P50 = %v, want near 10ms bucket edge", p50)
	}
	p100 := h.Quantile(1)
	if p100 != 5*time.Second {
		t.Fatalf("P100 = %v, want the observed max", p100)
	}
	if (&Histogram{}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestHistogramQuantilePanicsOutOfRange(t *testing.T) {
	h, _ := NewHistogram(time.Millisecond, time.Second, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	h.Quantile(1.5)
}

func TestHistogramWrite(t *testing.T) {
	h, _ := NewHistogram(time.Millisecond, 100*time.Millisecond, 4)
	for i := 0; i < 10; i++ {
		h.Observe(5 * time.Millisecond)
	}
	h.Observe(time.Minute)
	var sb strings.Builder
	if err := h.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "█") || !strings.Contains(out, "overflow") {
		t.Fatalf("render:\n%s", out)
	}
	empty, _ := NewHistogram(time.Millisecond, time.Second, 3)
	sb.Reset()
	empty.Write(&sb) //nolint:errcheck
	if !strings.Contains(sb.String(), "no samples") {
		t.Fatal("empty histogram render wrong")
	}
}

func TestCollectorLatencyHistogram(t *testing.T) {
	c := NewCollector()
	for i := 1; i <= 5; i++ {
		c.Add(Record{Function: "A", Submitted: 0, Finished: time.Duration(i) * 10 * time.Millisecond})
	}
	c.Add(Record{Function: "A", Err: "x", Finished: time.Hour}) // excluded
	h, err := c.LatencyHistogram(time.Millisecond, time.Second, 8)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 5 {
		t.Fatalf("histogram saw %d samples, want 5 (errors excluded)", h.Total())
	}
}

// Property: the bucket-edge quantile never undershoots the true quantile.
func TestHistogramQuantileUpperBoundProperty(t *testing.T) {
	prop := func(samplesMs []uint16, qRaw uint8) bool {
		if len(samplesMs) == 0 {
			return true
		}
		h, err := NewHistogram(time.Millisecond, time.Minute, 24)
		if err != nil {
			return false
		}
		ds := make([]time.Duration, len(samplesMs))
		for i, ms := range samplesMs {
			ds[i] = time.Duration(ms) * time.Millisecond
			h.Observe(ds[i])
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		q := float64(qRaw%101) / 100
		rank := int(float64(len(ds)-1) * q)
		trueQ := ds[rank]
		return h.Quantile(q) >= trueQ ||
			// overflow-bucket samples report the max, which is exact
			h.Quantile(q) == h.max
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
