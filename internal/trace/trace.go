// Package trace collects per-invocation records and computes the summary
// statistics the paper reports: per-function execution and overhead means
// (Fig 3), cluster throughput, and energy-per-function.
//
// The paper's OP timestamps every invocation at the orchestrator and on the
// worker; this package is the equivalent bookkeeping. Times are offsets on
// the experiment's clock (virtual in sim mode, wall in live mode).
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"microfaas/internal/chunklog"
)

// Record is one completed (or failed) function invocation.
type Record struct {
	JobID    int64
	Function string
	Worker   string
	// Attempt is 0 for the first execution, >0 for OP-level retries.
	Attempt int

	// Submitted is when the OP enqueued the job; Started when the worker
	// began its cycle (power-on); Finished when the result arrived.
	Submitted, Started, Finished time.Duration

	// Boot, Overhead, and Exec decompose the worker's cycle: OS boot,
	// network/protocol overhead, and function execution (Fig 3's split).
	Boot, Overhead, Exec time.Duration

	// Err is non-empty when the invocation failed.
	Err string
}

// Total is the worker-side cycle time (boot + overhead + exec).
func (r Record) Total() time.Duration { return r.Boot + r.Overhead + r.Exec }

// Latency is the end-to-end time from submission to result.
func (r Record) Latency() time.Duration { return r.Finished - r.Submitted }

// Collector accumulates records; safe for concurrent use.
type Collector struct {
	mu sync.Mutex
	// records is chunked: Add runs once per completed invocation on the
	// hot path, and a flat slice's geometric regrowth (zero + copy the
	// whole backing array at every doubling) dominated long runs.
	records chunklog.Log[Record]
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Add appends one record.
func (c *Collector) Add(r Record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.records.Append(r)
}

// Len returns the number of records.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.records.Len()
}

// Records returns a copy of all records.
func (c *Collector) Records() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.records.Flatten()
}

// each visits every record in insertion order under the collector's lock.
func (c *Collector) each(fn func(Record)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.records.Each(fn)
}

// FunctionStats summarizes one function's invocations.
type FunctionStats struct {
	Function string
	Count    int
	Errors   int
	// Means over successful invocations.
	MeanExec     time.Duration
	MeanOverhead time.Duration
	MeanTotal    time.Duration
	MeanLatency  time.Duration
	// P50/P95 of worker-side total time.
	P50Total, P95Total time.Duration
}

// ByFunction groups records and computes per-function statistics, sorted
// by function name.
func (c *Collector) ByFunction() []FunctionStats {
	groups := map[string][]Record{}
	c.each(func(r Record) {
		groups[r.Function] = append(groups[r.Function], r)
	})
	names := make([]string, 0, len(groups))
	for n := range groups {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]FunctionStats, 0, len(names))
	for _, n := range names {
		out = append(out, summarize(n, groups[n]))
	}
	return out
}

func summarize(name string, recs []Record) FunctionStats {
	st := FunctionStats{Function: name, Count: len(recs)}
	var exec, ovh, total, lat time.Duration
	var totals []time.Duration
	ok := 0
	for _, r := range recs {
		if r.Err != "" {
			st.Errors++
			continue
		}
		ok++
		exec += r.Exec
		ovh += r.Overhead
		total += r.Exec + r.Overhead
		lat += r.Latency()
		totals = append(totals, r.Exec+r.Overhead)
	}
	if ok > 0 {
		st.MeanExec = exec / time.Duration(ok)
		st.MeanOverhead = ovh / time.Duration(ok)
		st.MeanTotal = total / time.Duration(ok)
		st.MeanLatency = lat / time.Duration(ok)
		st.P50Total = Percentile(totals, 50)
		st.P95Total = Percentile(totals, 95)
	}
	return st
}

// Percentile returns the p-th percentile (nearest-rank) of durations:
// the smallest element with at least p% of the sample at or below it.
// Degenerate inputs resolve without special cases — an empty slice
// yields 0, a single-element slice yields that element for every p
// (p=0 rounds up to rank 1), and the input is never reordered (the
// ranking works on a copy). Panics for p outside [0,100].
func Percentile(ds []time.Duration, p float64) time.Duration {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("trace: percentile %v outside [0,100]", p))
	}
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Throughput returns successful invocations per minute over [start, end].
func (c *Collector) Throughput(start, end time.Duration) float64 {
	if end <= start {
		return 0
	}
	n := 0
	c.each(func(r Record) {
		if r.Err == "" && r.Finished >= start && r.Finished <= end {
			n++
		}
	})
	return float64(n) / (end - start).Minutes()
}

// ErrorCount returns the number of failed invocations.
func (c *Collector) ErrorCount() int {
	n := 0
	c.each(func(r Record) {
		if r.Err != "" {
			n++
		}
	})
	return n
}

// WriteCSV emits all records as CSV (header + one row per record).
func (c *Collector) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "job_id,function,worker,attempt,submitted_ms,started_ms,finished_ms,boot_ms,overhead_ms,exec_ms,error"); err != nil {
		return err
	}
	for _, r := range c.Records() {
		_, err := fmt.Fprintf(w, "%d,%s,%s,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%q\n",
			r.JobID, r.Function, r.Worker, r.Attempt,
			ms(r.Submitted), ms(r.Started), ms(r.Finished),
			ms(r.Boot), ms(r.Overhead), ms(r.Exec), r.Err)
		if err != nil {
			return err
		}
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
