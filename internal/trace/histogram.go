package trace

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// Histogram buckets durations into logarithmic bins for latency
// distribution reports (the paper's motivation section leans on FaaS
// latency variability; the live CLI renders one of these per run).
type Histogram struct {
	// bounds[i] is the inclusive upper edge of bucket i; the last bucket
	// is unbounded.
	bounds []time.Duration
	counts []int
	total  int
	min    time.Duration
	max    time.Duration
}

// NewHistogram builds a histogram with log-spaced bucket edges from lo to
// hi (e.g. 1ms to 1m), with the given number of buckets plus an overflow.
func NewHistogram(lo, hi time.Duration, buckets int) (*Histogram, error) {
	if lo <= 0 || hi <= lo || buckets < 1 {
		return nil, fmt.Errorf("trace: bad histogram shape lo=%v hi=%v buckets=%d", lo, hi, buckets)
	}
	h := &Histogram{
		bounds: make([]time.Duration, buckets),
		counts: make([]int, buckets+1),
		min:    time.Duration(math.MaxInt64),
	}
	ratio := math.Pow(float64(hi)/float64(lo), 1/float64(buckets-1))
	edge := float64(lo)
	for i := 0; i < buckets; i++ {
		h.bounds[i] = time.Duration(edge)
		edge *= ratio
	}
	h.bounds[buckets-1] = hi // kill accumulation error on the last edge
	return h, nil
}

// Observe adds one sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.total++
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	for i, b := range h.bounds {
		if d <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.counts)-1]++
}

// Total returns the number of observed samples.
func (h *Histogram) Total() int { return h.total }

// Quantile returns an upper bound on the q-th quantile (the edge of the
// bucket containing it); q in [0,1].
func (h *Histogram) Quantile(q float64) time.Duration {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("trace: quantile %v outside [0,1]", q))
	}
	if h.total == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	seen := 0
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max // overflow bucket: report the observed max
		}
	}
	return h.max
}

// Write renders the histogram as rows of "≤edge count bar". Empty leading
// and trailing buckets are elided.
func (h *Histogram) Write(w io.Writer) error {
	if h.total == 0 {
		_, err := fmt.Fprintln(w, "(no samples)")
		return err
	}
	first, last := 0, len(h.counts)-1
	for first < len(h.counts) && h.counts[first] == 0 {
		first++
	}
	for last >= 0 && h.counts[last] == 0 {
		last--
	}
	maxCount := 0
	for _, c := range h.counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i := first; i <= last; i++ {
		label := "overflow"
		if i < len(h.bounds) {
			label = "≤" + h.bounds[i].Round(time.Microsecond).String()
		}
		bar := strings.Repeat("█", h.counts[i]*40/maxCount)
		if h.counts[i] > 0 && bar == "" {
			bar = "▏"
		}
		if _, err := fmt.Fprintf(w, "%12s %6d %s\n", label, h.counts[i], bar); err != nil {
			return err
		}
	}
	return nil
}

// LatencyHistogram builds and fills a histogram from the collector's
// successful invocations' end-to-end latencies.
func (c *Collector) LatencyHistogram(lo, hi time.Duration, buckets int) (*Histogram, error) {
	h, err := NewHistogram(lo, hi, buckets)
	if err != nil {
		return nil, err
	}
	for _, r := range c.Records() {
		if r.Err == "" {
			h.Observe(r.Latency())
		}
	}
	return h, nil
}
