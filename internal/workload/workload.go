// Package workload implements the paper's 17-function benchmark suite
// (Table I) as real, runnable Go functions.
//
// The paper runs MicroPython adaptations of six FunctionBench functions and
// eleven functions of its own creation. This package reimplements all 17 in
// Go: the CPU/RAM-bound functions perform the same computational kernels
// (hash cascades, AES, matmul, DEFLATE, regex, HTML templating), and the
// network-bound functions talk to this repository's real backing services
// (internal/kvstore, internal/sqlstore, internal/objstore, internal/mq)
// over real TCP connections — just as the paper's workers talk to Redis,
// PostgreSQL, MinIO, and Kafka hosted on dedicated service nodes.
//
// Every function takes JSON-encoded arguments and returns a JSON-encoded
// result, mirroring a FaaS platform's invocation interface. Argument
// generators produce deterministic, realistic invocations from a seed so
// the live cluster and the tests can drive the suite reproducibly.
package workload

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Env carries everything an executing function may touch: the addresses of
// the cluster's backing services. An empty address means the service is
// unavailable and functions needing it fail cleanly.
type Env struct {
	KVStoreAddr  string // kvstore (Redis substitute)
	SQLStoreAddr string // sqlstore (PostgreSQL substitute)
	ObjStoreAddr string // objstore (MinIO substitute)
	MQAddr       string // mq (Kafka substitute)

	// DialTimeout bounds backend connection attempts.
	DialTimeout time.Duration
}

// dialTimeout returns the configured timeout or a sane default.
func (e *Env) dialTimeout() time.Duration {
	if e.DialTimeout > 0 {
		return e.DialTimeout
	}
	return 5 * time.Second
}

// Function is one deployable workload function.
type Function struct {
	// Name matches Table I and internal/model.
	Name string
	// Run executes the function: JSON args in, JSON result out.
	Run func(env *Env, args []byte) ([]byte, error)
	// GenArgs produces a realistic argument payload from a seeded source.
	GenArgs func(rng *rand.Rand) []byte
}

// registry is populated by the cpu.go and network.go init functions.
var registry = map[string]Function{}

func register(f Function) {
	if _, dup := registry[f.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate function %q", f.Name))
	}
	registry[f.Name] = f
}

// Get returns the named function.
func Get(name string) (Function, error) {
	f, ok := registry[name]
	if !ok {
		return Function{}, fmt.Errorf("workload: unknown function %q", name)
	}
	return f, nil
}

// Names returns the sorted function names.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every registered function, sorted by name.
func All() []Function {
	names := Names()
	out := make([]Function, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n])
	}
	return out
}

// Invoke runs the named function against env.
func Invoke(env *Env, name string, args []byte) ([]byte, error) {
	f, err := Get(name)
	if err != nil {
		return nil, err
	}
	return f.Run(env, args)
}

// mustJSON marshals a value that cannot fail (result structs of plain
// types); a failure is a programming error.
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("workload: marshal result: %v", err))
	}
	return b
}

// decodeArgs unmarshals JSON args with a function-tagged error.
func decodeArgs(name string, args []byte, v any) error {
	if err := json.Unmarshal(args, v); err != nil {
		return fmt.Errorf("workload: %s: bad arguments: %w", name, err)
	}
	return nil
}
