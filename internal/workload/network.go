package workload

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"

	"microfaas/internal/kvstore"
	"microfaas/internal/mq"
	"microfaas/internal/objstore"
	"microfaas/internal/sqlstore"
)

// This file implements Table I's eight network-bound functions against the
// repository's backing services. Each invocation dials its service fresh —
// a MicroFaaS worker boots into a clean environment for every job, so
// there are no pooled connections to reuse (Sec III).

// Names of the shared fixtures SetupBackends provisions.
const (
	// SQLTable is the table SQLSelect/SQLUpdate query.
	SQLTable = "records"
	// SQLRows is how many rows SetupBackends seeds.
	SQLRows = 200
	// COSBucket is the object-store bucket.
	COSBucket = "cos"
	// COSObjects is how many blobs SetupBackends uploads.
	COSObjects = 8
	// COSObjectBytes is the size of each seeded blob (kept modest so live
	// tests stay fast; the paper-scale 8 MiB transfer time is modelled in
	// internal/model).
	COSObjectBytes = 128 << 10
	// MQTopic is the message-queue topic.
	MQTopic = "events"
	// MQSeedMessages is how many messages SetupBackends produces.
	MQSeedMessages = 32
)

// SetupBackends provisions the shared fixtures the network-bound functions
// expect: the SQL table, the object-store bucket and blobs, and a primed MQ
// topic. Call it once per cluster before driving load. It is idempotent
// for the object store and MQ; re-seeding the SQL table requires a fresh
// database.
func SetupBackends(env *Env) error {
	if env.SQLStoreAddr != "" {
		if err := setupSQL(env); err != nil {
			return err
		}
	}
	if env.ObjStoreAddr != "" {
		if err := setupCOS(env); err != nil {
			return err
		}
	}
	if env.MQAddr != "" {
		if err := setupMQ(env); err != nil {
			return err
		}
	}
	return nil
}

func setupSQL(env *Env) error {
	c, err := sqlstore.Dial(env.SQLStoreAddr, env.dialTimeout())
	if err != nil {
		return fmt.Errorf("workload: setup sql: %w", err)
	}
	defer c.Close()
	if _, err := c.Query(fmt.Sprintf(
		"CREATE TABLE %s (id INT, name TEXT, balance FLOAT, region TEXT)", SQLTable)); err != nil {
		return fmt.Errorf("workload: setup sql: %w", err)
	}
	regions := []string{"us-east", "us-west", "eu-central", "ap-south"}
	rng := rand.New(rand.NewSource(7))
	var sb bytes.Buffer
	fmt.Fprintf(&sb, "INSERT INTO %s VALUES ", SQLTable)
	for i := 0; i < SQLRows; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'acct-%04d', %.2f, '%s')",
			i, i, rng.Float64()*10000, regions[i%len(regions)])
	}
	if _, err := c.Query(sb.String()); err != nil {
		return fmt.Errorf("workload: setup sql: %w", err)
	}
	return nil
}

func setupCOS(env *Env) error {
	c := objstore.NewClient(env.ObjStoreAddr)
	if err := c.CreateBucket(COSBucket); err != nil {
		return fmt.Errorf("workload: setup cos: %w", err)
	}
	for i := 0; i < COSObjects; i++ {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		blob := make([]byte, COSObjectBytes)
		rng.Read(blob) //nolint:errcheck // math/rand Read never fails
		if _, err := c.Put(COSBucket, cosKey(i), blob); err != nil {
			return fmt.Errorf("workload: setup cos: %w", err)
		}
	}
	return nil
}

func setupMQ(env *Env) error {
	c, err := mq.Dial(env.MQAddr, env.dialTimeout())
	if err != nil {
		return fmt.Errorf("workload: setup mq: %w", err)
	}
	defer c.Close()
	for i := 0; i < MQSeedMessages; i++ {
		msg := fmt.Sprintf(`{"event":"seed","n":%d}`, i)
		if _, err := c.Produce(MQTopic, nil, []byte(msg)); err != nil {
			return fmt.Errorf("workload: setup mq: %w", err)
		}
	}
	return nil
}

func cosKey(i int) string { return fmt.Sprintf("blob-%03d", i) }

// --- RedisInsert / RedisUpdate ---

type kvArgs struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

type kvResult struct {
	Key     string `json:"key"`
	Existed bool   `json:"existed"`
}

func runRedisInsert(env *Env, raw []byte) ([]byte, error) {
	var args kvArgs
	if err := decodeArgs("RedisInsert", raw, &args); err != nil {
		return nil, err
	}
	if env.KVStoreAddr == "" {
		return nil, errors.New("workload: RedisInsert: no kvstore configured")
	}
	c, err := kvstore.Dial(env.KVStoreAddr, env.dialTimeout())
	if err != nil {
		return nil, err
	}
	defer c.Close()
	stored, err := c.SetNX(args.Key, []byte(args.Value))
	if err != nil {
		return nil, err
	}
	if !stored {
		// Key collision: still a successful insert semantically — pick the
		// versioned key the way the paper's benchmark retries would.
		if err := c.Set(args.Key+":dup", []byte(args.Value)); err != nil {
			return nil, err
		}
	}
	return mustJSON(kvResult{Key: args.Key, Existed: !stored}), nil
}

func runRedisUpdate(env *Env, raw []byte) ([]byte, error) {
	var args kvArgs
	if err := decodeArgs("RedisUpdate", raw, &args); err != nil {
		return nil, err
	}
	if env.KVStoreAddr == "" {
		return nil, errors.New("workload: RedisUpdate: no kvstore configured")
	}
	c, err := kvstore.Dial(env.KVStoreAddr, env.dialTimeout())
	if err != nil {
		return nil, err
	}
	defer c.Close()
	// Ensure the record exists, then overwrite it — an update against a
	// possibly-fresh store.
	if _, err := c.SetNX(args.Key, []byte("initial")); err != nil {
		return nil, err
	}
	if err := c.Set(args.Key, []byte(args.Value)); err != nil {
		return nil, err
	}
	return mustJSON(kvResult{Key: args.Key, Existed: true}), nil
}

// --- SQLSelect / SQLUpdate ---

type sqlSelectArgs struct {
	Region     string  `json:"region"`
	MinBalance float64 `json:"min_balance"`
	Limit      int     `json:"limit"`
}

type sqlSelectResult struct {
	Rows int `json:"rows"`
}

func runSQLSelect(env *Env, raw []byte) ([]byte, error) {
	var args sqlSelectArgs
	if err := decodeArgs("SQLSelect", raw, &args); err != nil {
		return nil, err
	}
	if env.SQLStoreAddr == "" {
		return nil, errors.New("workload: SQLSelect: no sqlstore configured")
	}
	c, err := sqlstore.Dial(env.SQLStoreAddr, env.dialTimeout())
	if err != nil {
		return nil, err
	}
	defer c.Close()
	limit := args.Limit
	if limit <= 0 {
		limit = 20
	}
	q := fmt.Sprintf(
		"SELECT id, name, balance FROM %s WHERE region = '%s' AND balance >= %f ORDER BY balance DESC LIMIT %d",
		SQLTable, args.Region, args.MinBalance, limit)
	res, err := c.Query(q)
	if err != nil {
		return nil, err
	}
	return mustJSON(sqlSelectResult{Rows: len(res.Rows)}), nil
}

type sqlUpdateArgs struct {
	ID      int     `json:"id"`
	Balance float64 `json:"balance"`
}

type sqlUpdateResult struct {
	Affected int `json:"affected"`
}

func runSQLUpdate(env *Env, raw []byte) ([]byte, error) {
	var args sqlUpdateArgs
	if err := decodeArgs("SQLUpdate", raw, &args); err != nil {
		return nil, err
	}
	if env.SQLStoreAddr == "" {
		return nil, errors.New("workload: SQLUpdate: no sqlstore configured")
	}
	c, err := sqlstore.Dial(env.SQLStoreAddr, env.dialTimeout())
	if err != nil {
		return nil, err
	}
	defer c.Close()
	res, err := c.Query(fmt.Sprintf(
		"UPDATE %s SET balance = %f WHERE id = %d", SQLTable, args.Balance, args.ID))
	if err != nil {
		return nil, err
	}
	return mustJSON(sqlUpdateResult{Affected: res.Affected}), nil
}

// --- COSGet / COSPut ---

type cosGetArgs struct {
	Key string `json:"key"`
}

type cosGetResult struct {
	Bytes    int    `json:"bytes"`
	Checksum string `json:"checksum"`
}

func runCOSGet(env *Env, raw []byte) ([]byte, error) {
	var args cosGetArgs
	if err := decodeArgs("COSGet", raw, &args); err != nil {
		return nil, err
	}
	if env.ObjStoreAddr == "" {
		return nil, errors.New("workload: COSGet: no objstore configured")
	}
	c := objstore.NewClient(env.ObjStoreAddr)
	data, ok, err := c.Get(COSBucket, args.Key)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("workload: COSGet: object %q not found", args.Key)
	}
	return mustJSON(cosGetResult{
		Bytes:    len(data),
		Checksum: fmt.Sprintf("%08x", crc32.ChecksumIEEE(data)),
	}), nil
}

type cosPutArgs struct {
	Key   string `json:"key"`
	Bytes int    `json:"bytes"`
	Seed  int64  `json:"seed"`
}

type cosPutResult struct {
	Key  string `json:"key"`
	ETag string `json:"etag"`
}

func runCOSPut(env *Env, raw []byte) ([]byte, error) {
	var args cosPutArgs
	if err := decodeArgs("COSPut", raw, &args); err != nil {
		return nil, err
	}
	if env.ObjStoreAddr == "" {
		return nil, errors.New("workload: COSPut: no objstore configured")
	}
	if args.Bytes <= 0 || args.Bytes > 64<<20 {
		return nil, fmt.Errorf("workload: COSPut: bytes must be in (0,64MiB], got %d", args.Bytes)
	}
	rng := rand.New(rand.NewSource(args.Seed))
	blob := make([]byte, args.Bytes)
	rng.Read(blob) //nolint:errcheck // math/rand Read never fails
	c := objstore.NewClient(env.ObjStoreAddr)
	tag, err := c.Put(COSBucket, args.Key, blob)
	if err != nil {
		return nil, err
	}
	return mustJSON(cosPutResult{Key: args.Key, ETag: tag}), nil
}

// --- MQProduce / MQConsume ---

type mqProduceArgs struct {
	Message string `json:"message"`
}

type mqProduceResult struct {
	Offset int64 `json:"offset"`
}

func runMQProduce(env *Env, raw []byte) ([]byte, error) {
	var args mqProduceArgs
	if err := decodeArgs("MQProduce", raw, &args); err != nil {
		return nil, err
	}
	if env.MQAddr == "" {
		return nil, errors.New("workload: MQProduce: no mq configured")
	}
	c, err := mq.Dial(env.MQAddr, env.dialTimeout())
	if err != nil {
		return nil, err
	}
	defer c.Close()
	off, err := c.Produce(MQTopic, nil, []byte(args.Message))
	if err != nil {
		return nil, err
	}
	return mustJSON(mqProduceResult{Offset: off}), nil
}

type mqConsumeArgs struct {
	Seed int64 `json:"seed"`
}

type mqConsumeResult struct {
	Offset int64  `json:"offset"`
	Bytes  int    `json:"bytes"`
	Body   string `json:"body"`
}

func runMQConsume(env *Env, raw []byte) ([]byte, error) {
	var args mqConsumeArgs
	if err := decodeArgs("MQConsume", raw, &args); err != nil {
		return nil, err
	}
	if env.MQAddr == "" {
		return nil, errors.New("workload: MQConsume: no mq configured")
	}
	c, err := mq.Dial(env.MQAddr, env.dialTimeout())
	if err != nil {
		return nil, err
	}
	defer c.Close()
	end, err := c.End(MQTopic)
	if err != nil {
		return nil, err
	}
	if end == 0 {
		return nil, fmt.Errorf("workload: MQConsume: topic %q is empty", MQTopic)
	}
	// Read one message at a seed-chosen offset: non-destructive, so the
	// suite can run MQConsume any number of times.
	off := args.Seed % end
	if off < 0 {
		off += end
	}
	msgs, err := c.Fetch(MQTopic, off, 1, 0)
	if err != nil {
		return nil, err
	}
	if len(msgs) == 0 {
		return nil, fmt.Errorf("workload: MQConsume: no message at offset %d", off)
	}
	return mustJSON(mqConsumeResult{
		Offset: msgs[0].Offset,
		Bytes:  len(msgs[0].Value),
		Body:   string(msgs[0].Value),
	}), nil
}

func init() {
	register(Function{
		Name: "RedisInsert",
		Run:  runRedisInsert,
		GenArgs: func(rng *rand.Rand) []byte {
			return mustJSON(kvArgs{
				Key:   fmt.Sprintf("rec:%012d", rng.Int63n(1e12)),
				Value: genText(rng, 24),
			})
		},
	})
	register(Function{
		Name: "RedisUpdate",
		Run:  runRedisUpdate,
		GenArgs: func(rng *rand.Rand) []byte {
			return mustJSON(kvArgs{
				Key:   fmt.Sprintf("rec:%04d", rng.Intn(500)), // hot keyspace: updates hit existing records
				Value: genText(rng, 24),
			})
		},
	})
	register(Function{
		Name: "SQLSelect",
		Run:  runSQLSelect,
		GenArgs: func(rng *rand.Rand) []byte {
			regions := []string{"us-east", "us-west", "eu-central", "ap-south"}
			return mustJSON(sqlSelectArgs{
				Region:     regions[rng.Intn(len(regions))],
				MinBalance: rng.Float64() * 5000,
				Limit:      10 + rng.Intn(20),
			})
		},
	})
	register(Function{
		Name: "SQLUpdate",
		Run:  runSQLUpdate,
		GenArgs: func(rng *rand.Rand) []byte {
			return mustJSON(sqlUpdateArgs{
				ID:      rng.Intn(SQLRows),
				Balance: rng.Float64() * 10000,
			})
		},
	})
	register(Function{
		Name: "COSGet",
		Run:  runCOSGet,
		GenArgs: func(rng *rand.Rand) []byte {
			return mustJSON(cosGetArgs{Key: cosKey(rng.Intn(COSObjects))})
		},
	})
	register(Function{
		Name: "COSPut",
		Run:  runCOSPut,
		GenArgs: func(rng *rand.Rand) []byte {
			return mustJSON(cosPutArgs{
				Key:   fmt.Sprintf("upload-%08x", rng.Int31()),
				Bytes: 64<<10 + rng.Intn(64<<10),
				Seed:  rng.Int63(),
			})
		},
	})
	register(Function{
		Name: "MQProduce",
		Run:  runMQProduce,
		GenArgs: func(rng *rand.Rand) []byte {
			return mustJSON(mqProduceArgs{
				Message: fmt.Sprintf(`{"event":"invoke","id":%d,"note":"%s"}`, rng.Int63(), genText(rng, 12)),
			})
		},
	})
	register(Function{
		Name: "MQConsume",
		Run:  runMQConsume,
		GenArgs: func(rng *rand.Rand) []byte {
			return mustJSON(mqConsumeArgs{Seed: rng.Int63()})
		},
	})
}
