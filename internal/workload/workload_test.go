package workload

import (
	"bytes"
	"compress/flate"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"microfaas/internal/kvstore"
	"microfaas/internal/model"
	"microfaas/internal/mq"
	"microfaas/internal/objstore"
	"microfaas/internal/sqlstore"
)

// newBackends boots all four backing services and provisions fixtures,
// returning a ready Env and a teardown function.
func newBackends() (*Env, func(), error) {
	var closers []func()
	cleanup := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	fail := func(err error) (*Env, func(), error) {
		cleanup()
		return nil, nil, err
	}

	kv := kvstore.NewServer(nil)
	kvAddr, err := kv.Listen("127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	closers = append(closers, func() { kv.Close() })

	sql := sqlstore.NewServer(nil)
	sqlAddr, err := sql.Listen("127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	closers = append(closers, func() { sql.Close() })

	obj := objstore.NewServer(nil)
	objAddr, err := obj.Listen("127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	closers = append(closers, func() { obj.Close() })

	broker := mq.NewServer(nil)
	mqAddr, err := broker.Listen("127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	closers = append(closers, func() { broker.Close() })

	env := &Env{
		KVStoreAddr:  kvAddr,
		SQLStoreAddr: sqlAddr,
		ObjStoreAddr: objAddr,
		MQAddr:       mqAddr,
	}
	if err := SetupBackends(env); err != nil {
		return fail(err)
	}
	return env, cleanup, nil
}

// startBackends is newBackends wired to a test's lifecycle.
func startBackends(t *testing.T) *Env {
	t.Helper()
	env, cleanup, err := newBackends()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cleanup)
	return env
}

func TestRegistryMatchesModelSuite(t *testing.T) {
	// Every function in the calibrated model must have a real
	// implementation, and vice versa.
	names := Names()
	if len(names) != 17 {
		t.Fatalf("registry has %d functions, want 17", len(names))
	}
	for _, spec := range model.Functions() {
		if _, err := Get(spec.Name); err != nil {
			t.Errorf("model function %q has no implementation", spec.Name)
		}
	}
	for _, n := range names {
		if _, err := model.FunctionByName(n); err != nil {
			t.Errorf("implemented function %q missing from model", n)
		}
	}
}

func TestAllFunctionsRunAgainstRealBackends(t *testing.T) {
	env := startBackends(t)
	rng := rand.New(rand.NewSource(42))
	for _, f := range All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			for i := 0; i < 3; i++ {
				args := f.GenArgs(rng)
				out, err := f.Run(env, args)
				if err != nil {
					t.Fatalf("invocation %d failed: %v", i, err)
				}
				if !json.Valid(out) {
					t.Fatalf("invocation %d returned invalid JSON: %q", i, out)
				}
			}
		})
	}
}

func TestGenArgsDeterministic(t *testing.T) {
	for _, f := range All() {
		a := f.GenArgs(rand.New(rand.NewSource(7)))
		b := f.GenArgs(rand.New(rand.NewSource(7)))
		if !bytes.Equal(a, b) {
			t.Errorf("%s: GenArgs not deterministic for a fixed seed", f.Name)
		}
	}
}

func TestInvokeUnknownFunction(t *testing.T) {
	if _, err := Invoke(&Env{}, "Nope", nil); err == nil {
		t.Fatal("unknown function accepted")
	}
}

func TestBadArgumentsRejected(t *testing.T) {
	env := &Env{}
	for _, f := range All() {
		if _, err := f.Run(env, []byte(`{"definitely`)); err == nil {
			t.Errorf("%s accepted malformed JSON", f.Name)
		}
	}
}

func TestNetworkFunctionsFailCleanlyWithoutBackends(t *testing.T) {
	env := &Env{} // no services configured
	rng := rand.New(rand.NewSource(1))
	for _, name := range []string{"RedisInsert", "RedisUpdate", "SQLSelect",
		"SQLUpdate", "COSGet", "COSPut", "MQProduce", "MQConsume"} {
		f, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Run(env, f.GenArgs(rng)); err == nil {
			t.Errorf("%s succeeded with no backend configured", name)
		}
	}
}

// --- Per-function behaviour ---

func TestCascSHAKnownAnswer(t *testing.T) {
	out, err := runCascSHA(nil, []byte(`{"rounds":1,"seed":"abc"}`))
	if err != nil {
		t.Fatal(err)
	}
	var res cascadeResult
	json.Unmarshal(out, &res) //nolint:errcheck
	// sha256("abc")
	want := "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
	if res.Digest != want {
		t.Fatalf("digest = %s, want %s", res.Digest, want)
	}
}

func TestCascMD5KnownAnswer(t *testing.T) {
	out, err := runCascMD5(nil, []byte(`{"rounds":1,"seed":"abc"}`))
	if err != nil {
		t.Fatal(err)
	}
	var res cascadeResult
	json.Unmarshal(out, &res) //nolint:errcheck
	if res.Digest != "900150983cd24fb0d6963f7d28e17f72" {
		t.Fatalf("digest = %s", res.Digest)
	}
}

func TestCascadeIsDeterministicAndDeepens(t *testing.T) {
	run := func(rounds int) string {
		out, err := runCascSHA(nil, []byte(fmt.Sprintf(`{"rounds":%d,"seed":"x"}`, rounds)))
		if err != nil {
			t.Fatal(err)
		}
		var res cascadeResult
		json.Unmarshal(out, &res) //nolint:errcheck
		return res.Digest
	}
	if run(10) != run(10) {
		t.Fatal("cascade not deterministic")
	}
	if run(10) == run(11) {
		t.Fatal("extra round did not change the digest")
	}
}

func TestFloatOpsRejectsNonPositive(t *testing.T) {
	if _, err := runFloatOps(nil, []byte(`{"iterations":0}`)); err == nil {
		t.Fatal("accepted zero iterations")
	}
}

func TestMatMulDeterministicChecksum(t *testing.T) {
	args := []byte(`{"n":16,"seed":99}`)
	out1, err := runMatMul(nil, args)
	if err != nil {
		t.Fatal(err)
	}
	out2, _ := runMatMul(nil, args)
	if !bytes.Equal(out1, out2) {
		t.Fatal("MatMul not deterministic")
	}
	if _, err := runMatMul(nil, []byte(`{"n":0,"seed":1}`)); err == nil {
		t.Fatal("accepted n=0")
	}
	if _, err := runMatMul(nil, []byte(`{"n":99999,"seed":1}`)); err == nil {
		t.Fatal("accepted oversized n")
	}
}

func TestHTMLGenProducesParseableRows(t *testing.T) {
	out, err := runHTMLGen(nil, []byte(`{"title":"T","rows":5,"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	var res htmlGenResult
	json.Unmarshal(out, &res) //nolint:errcheck
	if res.Bytes != len(res.HTML) {
		t.Fatal("byte count disagrees with body")
	}
	if got := bytes.Count([]byte(res.HTML), []byte("<tr>")); got != 5 {
		t.Fatalf("row count = %d, want 5", got)
	}
}

func TestHTMLGenEscapesInput(t *testing.T) {
	out, err := runHTMLGen(nil, []byte(`{"title":"<script>alert(1)</script>","rows":1,"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	var res htmlGenResult
	json.Unmarshal(out, &res) //nolint:errcheck
	if bytes.Contains([]byte(res.HTML), []byte("<script>")) {
		t.Fatal("HTML injection not escaped")
	}
}

func TestAES128RoundTripVerifies(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f, _ := Get("AES128")
	out, err := f.Run(nil, f.GenArgs(rng))
	if err != nil {
		t.Fatal(err)
	}
	var res aesResult
	json.Unmarshal(out, &res) //nolint:errcheck
	if !res.OK {
		t.Fatal("encrypt/decrypt cascade corrupted the plaintext")
	}
}

func TestAES128RejectsBadKey(t *testing.T) {
	if _, err := runAES128(nil, []byte(`{"rounds":1,"key":"zz","data":""}`)); err == nil {
		t.Fatal("accepted bad key")
	}
	if _, err := runAES128(nil, []byte(`{"rounds":1,"key":"00112233445566778899aabbccddeeff","data":"%%%"}`)); err == nil {
		t.Fatal("accepted bad base64 data")
	}
}

func TestDecompressRecoversOriginal(t *testing.T) {
	original := []byte("the quick brown fox jumps over the lazy dog, repeatedly: " +
		"the quick brown fox jumps over the lazy dog")
	var buf bytes.Buffer
	w, _ := flate.NewWriter(&buf, flate.BestCompression)
	w.Write(original) //nolint:errcheck
	w.Close()         //nolint:errcheck
	args := mustJSON(decompressArgs{Data: base64.StdEncoding.EncodeToString(buf.Bytes())})
	out, err := runDecompress(nil, args)
	if err != nil {
		t.Fatal(err)
	}
	var res decompressResult
	json.Unmarshal(out, &res) //nolint:errcheck
	if res.Bytes != len(original) {
		t.Fatalf("inflated %d bytes, want %d", res.Bytes, len(original))
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	args := mustJSON(decompressArgs{Data: base64.StdEncoding.EncodeToString([]byte("not deflate"))})
	if _, err := runDecompress(nil, args); err == nil {
		t.Fatal("accepted non-DEFLATE data")
	}
}

func TestRegExSearchCountsEmails(t *testing.T) {
	args := mustJSON(regexArgs{
		Pattern: `[a-z0-9]+@[a-z]+\.[a-z]+`,
		Text:    "contact a@b.com or c99@d.org; not-an-email@",
	})
	out, err := runRegExSearch(nil, args)
	if err != nil {
		t.Fatal(err)
	}
	var res regexSearchResult
	json.Unmarshal(out, &res) //nolint:errcheck
	if res.Count != 2 {
		t.Fatalf("count = %d, want 2", res.Count)
	}
}

func TestRegExMatchBothWays(t *testing.T) {
	yes, err := runRegExMatch(nil, mustJSON(regexArgs{Pattern: `^a+b$`, Text: "aaab"}))
	if err != nil {
		t.Fatal(err)
	}
	no, _ := runRegExMatch(nil, mustJSON(regexArgs{Pattern: `^a+b$`, Text: "zzz"}))
	var r1, r2 regexMatchResult
	json.Unmarshal(yes, &r1) //nolint:errcheck
	json.Unmarshal(no, &r2)  //nolint:errcheck
	if !r1.Matched || r2.Matched {
		t.Fatalf("matched = %v/%v, want true/false", r1.Matched, r2.Matched)
	}
}

func TestRegExRejectsBadPattern(t *testing.T) {
	if _, err := runRegExSearch(nil, mustJSON(regexArgs{Pattern: `([`, Text: "x"})); err == nil {
		t.Fatal("accepted bad pattern")
	}
	if _, err := runRegExMatch(nil, mustJSON(regexArgs{Pattern: `([`, Text: "x"})); err == nil {
		t.Fatal("accepted bad pattern")
	}
}

// --- Network functions against live backends ---

func TestRedisInsertThenUpdateFlow(t *testing.T) {
	env := startBackends(t)
	out, err := runRedisInsert(env, mustJSON(kvArgs{Key: "rec:1", Value: "v1"}))
	if err != nil {
		t.Fatal(err)
	}
	var res kvResult
	json.Unmarshal(out, &res) //nolint:errcheck
	if res.Existed {
		t.Fatal("fresh insert reported a pre-existing key")
	}
	if _, err := runRedisUpdate(env, mustJSON(kvArgs{Key: "rec:1", Value: "v2"})); err != nil {
		t.Fatal(err)
	}
	c, err := kvstore.Dial(env.KVStoreAddr, env.dialTimeout())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	v, ok, err := c.Get("rec:1")
	if err != nil || !ok || string(v) != "v2" {
		t.Fatalf("final value = %q/%v/%v", v, ok, err)
	}
}

func TestSQLSelectFindsSeededRows(t *testing.T) {
	env := startBackends(t)
	out, err := runSQLSelect(env, mustJSON(sqlSelectArgs{Region: "us-east", MinBalance: 0, Limit: 100}))
	if err != nil {
		t.Fatal(err)
	}
	var res sqlSelectResult
	json.Unmarshal(out, &res)  //nolint:errcheck
	if res.Rows != SQLRows/4 { // four regions round-robin
		t.Fatalf("rows = %d, want %d", res.Rows, SQLRows/4)
	}
}

func TestSQLUpdateAffectsOneRow(t *testing.T) {
	env := startBackends(t)
	out, err := runSQLUpdate(env, mustJSON(sqlUpdateArgs{ID: 3, Balance: 123.45}))
	if err != nil {
		t.Fatal(err)
	}
	var res sqlUpdateResult
	json.Unmarshal(out, &res) //nolint:errcheck
	if res.Affected != 1 {
		t.Fatalf("affected = %d, want 1", res.Affected)
	}
}

func TestCOSGetChecksumsSeededBlob(t *testing.T) {
	env := startBackends(t)
	out, err := runCOSGet(env, mustJSON(cosGetArgs{Key: cosKey(0)}))
	if err != nil {
		t.Fatal(err)
	}
	var res cosGetResult
	json.Unmarshal(out, &res) //nolint:errcheck
	if res.Bytes != COSObjectBytes {
		t.Fatalf("bytes = %d, want %d", res.Bytes, COSObjectBytes)
	}
	if _, err := runCOSGet(env, mustJSON(cosGetArgs{Key: "missing"})); err == nil {
		t.Fatal("missing object fetched successfully")
	}
}

func TestCOSPutStoresRetrievableObject(t *testing.T) {
	env := startBackends(t)
	out, err := runCOSPut(env, mustJSON(cosPutArgs{Key: "up1", Bytes: 1024, Seed: 9}))
	if err != nil {
		t.Fatal(err)
	}
	var res cosPutResult
	json.Unmarshal(out, &res) //nolint:errcheck
	if res.ETag == "" {
		t.Fatal("no ETag returned")
	}
	c := objstore.NewClient(env.ObjStoreAddr)
	data, ok, err := c.Get(COSBucket, "up1")
	if err != nil || !ok || len(data) != 1024 {
		t.Fatalf("uploaded object: %d bytes/%v/%v", len(data), ok, err)
	}
}

func TestMQProduceThenConsume(t *testing.T) {
	env := startBackends(t)
	out, err := runMQProduce(env, mustJSON(mqProduceArgs{Message: "hello"}))
	if err != nil {
		t.Fatal(err)
	}
	var pres mqProduceResult
	json.Unmarshal(out, &pres)         //nolint:errcheck
	if pres.Offset != MQSeedMessages { // appended after the seed batch
		t.Fatalf("offset = %d, want %d", pres.Offset, MQSeedMessages)
	}
	out, err = runMQConsume(env, mustJSON(mqConsumeArgs{Seed: pres.Offset}))
	if err != nil {
		t.Fatal(err)
	}
	var cres mqConsumeResult
	json.Unmarshal(out, &cres) //nolint:errcheck
	if cres.Offset != pres.Offset || cres.Body != "hello" {
		t.Fatalf("consumed %+v, want offset %d body hello", cres, pres.Offset)
	}
}
