package workload

import (
	"bytes"
	"compress/flate"
	"crypto/aes"
	"crypto/cipher"
	"crypto/md5"
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"html/template"
	"io"
	"math"
	"math/rand"
	"regexp"
	"strings"
)

// This file implements Table I's nine CPU- or RAM-bound functions.
// Iteration counts in the generated arguments are sized so a single
// invocation completes in tens of milliseconds on a laptop — the live
// cluster measures real work, while the calibrated durations for the
// paper's hardware live in internal/model.

// --- FloatOps: floating-point trigonometric operations (FunctionBench) ---

type floatOpsArgs struct {
	Iterations int     `json:"iterations"`
	Seed       float64 `json:"seed"`
}

type floatOpsResult struct {
	Iterations int     `json:"iterations"`
	Value      float64 `json:"value"`
}

func runFloatOps(_ *Env, raw []byte) ([]byte, error) {
	var args floatOpsArgs
	if err := decodeArgs("FloatOps", raw, &args); err != nil {
		return nil, err
	}
	if args.Iterations <= 0 {
		return nil, fmt.Errorf("workload: FloatOps: iterations must be positive")
	}
	x := args.Seed
	for i := 0; i < args.Iterations; i++ {
		x = math.Sin(x) + math.Cos(x)*math.Tan(x+1.5)
		x = math.Sqrt(math.Abs(x)) + math.Log1p(math.Abs(x))
	}
	return mustJSON(floatOpsResult{Iterations: args.Iterations, Value: x}), nil
}

// --- CascSHA / CascMD5: cascading hash calculations ---

type cascadeArgs struct {
	Rounds int    `json:"rounds"`
	Seed   string `json:"seed"`
}

type cascadeResult struct {
	Rounds int    `json:"rounds"`
	Digest string `json:"digest"`
}

func runCascSHA(_ *Env, raw []byte) ([]byte, error) {
	var args cascadeArgs
	if err := decodeArgs("CascSHA", raw, &args); err != nil {
		return nil, err
	}
	if args.Rounds <= 0 {
		return nil, fmt.Errorf("workload: CascSHA: rounds must be positive")
	}
	// Reuse one buffer across rounds: `digest = sum[:]` would heap-escape
	// a fresh 32-byte array every iteration, turning the cascade into an
	// allocation loop.
	digest := []byte(args.Seed)
	for i := 0; i < args.Rounds; i++ {
		sum := sha256.Sum256(digest)
		digest = append(digest[:0], sum[:]...)
	}
	return mustJSON(cascadeResult{Rounds: args.Rounds, Digest: hex.EncodeToString(digest)}), nil
}

func runCascMD5(_ *Env, raw []byte) ([]byte, error) {
	var args cascadeArgs
	if err := decodeArgs("CascMD5", raw, &args); err != nil {
		return nil, err
	}
	if args.Rounds <= 0 {
		return nil, fmt.Errorf("workload: CascMD5: rounds must be positive")
	}
	digest := []byte(args.Seed)
	for i := 0; i < args.Rounds; i++ {
		sum := md5.Sum(digest)
		digest = append(digest[:0], sum[:]...)
	}
	return mustJSON(cascadeResult{Rounds: args.Rounds, Digest: hex.EncodeToString(digest)}), nil
}

// --- MatMul: large random matrix multiplication (FunctionBench) ---

type matMulArgs struct {
	N    int   `json:"n"`
	Seed int64 `json:"seed"`
}

type matMulResult struct {
	N        int     `json:"n"`
	Checksum float64 `json:"checksum"`
}

func runMatMul(_ *Env, raw []byte) ([]byte, error) {
	var args matMulArgs
	if err := decodeArgs("MatMul", raw, &args); err != nil {
		return nil, err
	}
	if args.N <= 0 || args.N > 2048 {
		return nil, fmt.Errorf("workload: MatMul: n must be in (0,2048], got %d", args.N)
	}
	n := args.N
	rng := rand.New(rand.NewSource(args.Seed))
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range a {
		a[i] = rng.Float64()
		b[i] = rng.Float64()
	}
	c := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a[i*n+k]
			row := b[k*n:]
			out := c[i*n:]
			for j := 0; j < n; j++ {
				out[j] += aik * row[j]
			}
		}
	}
	sum := 0.0
	for _, v := range c {
		sum += v
	}
	return mustJSON(matMulResult{N: n, Checksum: sum}), nil
}

// --- HTMLGen: dynamically generate and serve HTML ---

type htmlGenArgs struct {
	Title string `json:"title"`
	Rows  int    `json:"rows"`
	Seed  int64  `json:"seed"`
}

type htmlGenResult struct {
	Bytes int    `json:"bytes"`
	HTML  string `json:"html"`
}

var htmlTmpl = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html><head><title>{{.Title}}</title></head>
<body><h1>{{.Title}}</h1>
<table>
{{range .Rows}}<tr><td>{{.ID}}</td><td>{{.Name}}</td><td>{{.Score}}</td></tr>
{{end}}</table>
</body></html>
`))

func runHTMLGen(_ *Env, raw []byte) ([]byte, error) {
	var args htmlGenArgs
	if err := decodeArgs("HTMLGen", raw, &args); err != nil {
		return nil, err
	}
	if args.Rows <= 0 || args.Rows > 1<<20 {
		return nil, fmt.Errorf("workload: HTMLGen: rows must be in (0,2^20], got %d", args.Rows)
	}
	rng := rand.New(rand.NewSource(args.Seed))
	type row struct {
		ID    int
		Name  string
		Score float64
	}
	rows := make([]row, args.Rows)
	for i := range rows {
		rows[i] = row{ID: i, Name: fmt.Sprintf("user-%06x", rng.Int31()), Score: rng.Float64() * 100}
	}
	var buf bytes.Buffer
	if err := htmlTmpl.Execute(&buf, map[string]any{"Title": args.Title, "Rows": rows}); err != nil {
		return nil, fmt.Errorf("workload: HTMLGen: %w", err)
	}
	return mustJSON(htmlGenResult{Bytes: buf.Len(), HTML: buf.String()}), nil
}

// --- AES128: cascading AES128 encryption/decryption (FunctionBench) ---

type aesArgs struct {
	Rounds int    `json:"rounds"`
	Key    string `json:"key"`  // 32 hex chars (16 bytes)
	Data   string `json:"data"` // base64 plaintext
}

type aesResult struct {
	Rounds int    `json:"rounds"`
	Tag    string `json:"tag"` // crc32 of final plaintext, must equal input's
	OK     bool   `json:"ok"`
}

func runAES128(_ *Env, raw []byte) ([]byte, error) {
	var args aesArgs
	if err := decodeArgs("AES128", raw, &args); err != nil {
		return nil, err
	}
	if args.Rounds <= 0 {
		return nil, fmt.Errorf("workload: AES128: rounds must be positive")
	}
	key, err := hex.DecodeString(args.Key)
	if err != nil || len(key) != 16 {
		return nil, fmt.Errorf("workload: AES128: key must be 16 bytes hex")
	}
	plain, err := base64.StdEncoding.DecodeString(args.Data)
	if err != nil {
		return nil, fmt.Errorf("workload: AES128: bad data: %w", err)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("workload: AES128: %w", err)
	}
	origTag := crc32.ChecksumIEEE(plain)
	buf := append([]byte(nil), plain...)
	iv := make([]byte, aes.BlockSize)
	for i := 0; i < args.Rounds; i++ {
		binary.BigEndian.PutUint64(iv, uint64(i)+1)
		cipher.NewCTR(block, iv).XORKeyStream(buf, buf) // encrypt
		cipher.NewCTR(block, iv).XORKeyStream(buf, buf) // decrypt (CTR is symmetric)
	}
	tag := crc32.ChecksumIEEE(buf)
	return mustJSON(aesResult{
		Rounds: args.Rounds,
		Tag:    fmt.Sprintf("%08x", tag),
		OK:     tag == origTag,
	}), nil
}

// --- Decompress: extract a DEFLATE-compressed string (FunctionBench) ---

type decompressArgs struct {
	Data string `json:"data"` // base64 DEFLATE stream
}

type decompressResult struct {
	Bytes    int    `json:"bytes"`
	Checksum string `json:"checksum"`
}

func runDecompress(_ *Env, raw []byte) ([]byte, error) {
	var args decompressArgs
	if err := decodeArgs("Decompress", raw, &args); err != nil {
		return nil, err
	}
	compressed, err := base64.StdEncoding.DecodeString(args.Data)
	if err != nil {
		return nil, fmt.Errorf("workload: Decompress: bad data: %w", err)
	}
	r := flate.NewReader(bytes.NewReader(compressed))
	defer r.Close()
	out, err := io.ReadAll(io.LimitReader(r, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("workload: Decompress: inflate: %w", err)
	}
	return mustJSON(decompressResult{
		Bytes:    len(out),
		Checksum: fmt.Sprintf("%08x", crc32.ChecksumIEEE(out)),
	}), nil
}

// --- RegExSearch / RegExMatch ---

type regexArgs struct {
	Pattern string `json:"pattern"`
	Text    string `json:"text"`
}

type regexSearchResult struct {
	Count   int      `json:"count"`
	Samples []string `json:"samples,omitempty"`
}

func runRegExSearch(_ *Env, raw []byte) ([]byte, error) {
	var args regexArgs
	if err := decodeArgs("RegExSearch", raw, &args); err != nil {
		return nil, err
	}
	re, err := regexp.Compile(args.Pattern)
	if err != nil {
		return nil, fmt.Errorf("workload: RegExSearch: bad pattern: %w", err)
	}
	matches := re.FindAllString(args.Text, -1)
	samples := matches
	if len(samples) > 10 {
		samples = samples[:10]
	}
	return mustJSON(regexSearchResult{Count: len(matches), Samples: samples}), nil
}

type regexMatchResult struct {
	Matched bool `json:"matched"`
}

func runRegExMatch(_ *Env, raw []byte) ([]byte, error) {
	var args regexArgs
	if err := decodeArgs("RegExMatch", raw, &args); err != nil {
		return nil, err
	}
	re, err := regexp.Compile(args.Pattern)
	if err != nil {
		return nil, fmt.Errorf("workload: RegExMatch: bad pattern: %w", err)
	}
	return mustJSON(regexMatchResult{Matched: re.MatchString(args.Text)}), nil
}

// --- Argument generators ---

// loremWords feeds the text generators; content is immaterial, shape
// (word-ish tokens with digits and emails sprinkled in) is what the regex
// workloads chew on.
var loremWords = strings.Fields(`serverless function cloud energy watt node
worker cluster boot kernel packet switch queue topic bucket object record
alpha beta gamma delta epsilon 42 1024 2048 async event trigger invoke`)

func genText(rng *rand.Rand, words int) string {
	var sb strings.Builder
	for i := 0; i < words; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		if rng.Intn(37) == 0 {
			fmt.Fprintf(&sb, "user%d@example.com", rng.Intn(1000))
			continue
		}
		sb.WriteString(loremWords[rng.Intn(len(loremWords))])
	}
	return sb.String()
}

func init() {
	register(Function{
		Name: "FloatOps",
		Run:  runFloatOps,
		GenArgs: func(rng *rand.Rand) []byte {
			return mustJSON(floatOpsArgs{Iterations: 20000 + rng.Intn(10000), Seed: rng.Float64()})
		},
	})
	register(Function{
		Name: "CascSHA",
		Run:  runCascSHA,
		GenArgs: func(rng *rand.Rand) []byte {
			return mustJSON(cascadeArgs{Rounds: 30000 + rng.Intn(20000), Seed: genText(rng, 40)})
		},
	})
	register(Function{
		Name: "CascMD5",
		Run:  runCascMD5,
		GenArgs: func(rng *rand.Rand) []byte {
			return mustJSON(cascadeArgs{Rounds: 30000 + rng.Intn(20000), Seed: genText(rng, 40)})
		},
	})
	register(Function{
		Name: "MatMul",
		Run:  runMatMul,
		GenArgs: func(rng *rand.Rand) []byte {
			return mustJSON(matMulArgs{N: 96 + rng.Intn(64), Seed: rng.Int63()})
		},
	})
	register(Function{
		Name: "HTMLGen",
		Run:  runHTMLGen,
		GenArgs: func(rng *rand.Rand) []byte {
			return mustJSON(htmlGenArgs{Title: "MicroFaaS report", Rows: 300 + rng.Intn(300), Seed: rng.Int63()})
		},
	})
	register(Function{
		Name: "AES128",
		Run:  runAES128,
		GenArgs: func(rng *rand.Rand) []byte {
			key := make([]byte, 16)
			rng.Read(key) //nolint:errcheck // math/rand Read never fails
			data := make([]byte, 4096)
			rng.Read(data) //nolint:errcheck
			return mustJSON(aesArgs{
				Rounds: 200 + rng.Intn(200),
				Key:    hex.EncodeToString(key),
				Data:   base64.StdEncoding.EncodeToString(data),
			})
		},
	})
	register(Function{
		Name: "Decompress",
		Run:  runDecompress,
		GenArgs: func(rng *rand.Rand) []byte {
			text := genText(rng, 20000)
			var buf bytes.Buffer
			w, err := flate.NewWriter(&buf, flate.BestSpeed)
			if err != nil {
				panic(err) // static level, cannot fail
			}
			w.Write([]byte(text)) //nolint:errcheck // bytes.Buffer never fails
			w.Close()             //nolint:errcheck
			return mustJSON(decompressArgs{Data: base64.StdEncoding.EncodeToString(buf.Bytes())})
		},
	})
	register(Function{
		Name: "RegExSearch",
		Run:  runRegExSearch,
		GenArgs: func(rng *rand.Rand) []byte {
			return mustJSON(regexArgs{
				Pattern: `[a-z0-9]+@[a-z]+\.[a-z]+`,
				Text:    genText(rng, 12000),
			})
		},
	})
	register(Function{
		Name: "RegExMatch",
		Run:  runRegExMatch,
		GenArgs: func(rng *rand.Rand) []byte {
			return mustJSON(regexArgs{
				Pattern: `(alpha|beta|gamma).*(42|1024).*trigger`,
				Text:    genText(rng, 6000),
			})
		},
	})
}
