package workload

import (
	"math/rand"
	"testing"
)

// Per-function micro-benchmarks: each runs one Table-I function's real Go
// implementation with generated arguments (network-bound functions against
// live loopback services). `go test -bench=Function ./internal/workload`
// profiles the suite's host-side compute cost.

func BenchmarkFunction(b *testing.B) {
	env := benchBackends(b)
	for _, f := range All() {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			args := f.GenArgs(rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.Run(env, args); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchBackends is startBackends without *testing.T.
func benchBackends(b *testing.B) *Env {
	b.Helper()
	env, cleanup, err := newBackends()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cleanup)
	return env
}

func BenchmarkGenArgs(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	fns := All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fns[i%len(fns)].GenArgs(rng)
	}
}
