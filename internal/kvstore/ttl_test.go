package kvstore

import (
	"bytes"
	"testing"
	"time"
)

// fakeClock is a controllable clock for TTL tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClockedStore() (*Store, *fakeClock) {
	c := &fakeClock{t: time.Unix(1000, 0)}
	return NewStoreWithClock(c.now), c
}

func TestSetWithTTLExpires(t *testing.T) {
	s, clock := newClockedStore()
	s.SetWithTTL("k", []byte("v"), 10*time.Second)
	if _, ok := s.Get("k"); !ok {
		t.Fatal("key missing before expiry")
	}
	clock.advance(9 * time.Second)
	if _, ok := s.Get("k"); !ok {
		t.Fatal("key expired early")
	}
	clock.advance(2 * time.Second)
	if _, ok := s.Get("k"); ok {
		t.Fatal("key survived its TTL")
	}
	if s.Len() != 0 {
		t.Fatal("expired key still counted")
	}
}

func TestPlainSetClearsTTL(t *testing.T) {
	s, clock := newClockedStore()
	s.SetWithTTL("k", []byte("v1"), time.Second)
	s.Set("k", []byte("v2"))
	clock.advance(time.Hour)
	v, ok := s.Get("k")
	if !ok || string(v) != "v2" {
		t.Fatal("plain Set should clear the TTL")
	}
	if ttl, ok := s.TTL("k"); !ok || ttl >= 0 {
		t.Fatalf("TTL = %v/%v, want -1 (no expiry)", ttl, ok)
	}
}

func TestExpireAndTTL(t *testing.T) {
	s, clock := newClockedStore()
	if s.Expire("missing", time.Second) {
		t.Fatal("Expire on missing key reported success")
	}
	s.Set("k", []byte("v"))
	if !s.Expire("k", 30*time.Second) {
		t.Fatal("Expire on live key failed")
	}
	ttl, ok := s.TTL("k")
	if !ok || ttl != 30*time.Second {
		t.Fatalf("TTL = %v/%v", ttl, ok)
	}
	clock.advance(10 * time.Second)
	ttl, _ = s.TTL("k")
	if ttl != 20*time.Second {
		t.Fatalf("TTL after 10s = %v", ttl)
	}
	if _, ok := s.TTL("missing"); ok {
		t.Fatal("TTL on missing key reported existence")
	}
	// Non-positive expiry deletes immediately, like Redis.
	if !s.Expire("k", 0) {
		t.Fatal("Expire(0) on live key failed")
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("Expire(0) left the key alive")
	}
}

func TestSetNXSucceedsAfterExpiry(t *testing.T) {
	s, clock := newClockedStore()
	s.SetWithTTL("k", []byte("old"), time.Second)
	clock.advance(2 * time.Second)
	if !s.SetNX("k", []byte("new")) {
		t.Fatal("SetNX blocked by an expired key")
	}
	v, _ := s.Get("k")
	if string(v) != "new" {
		t.Fatalf("value = %q", v)
	}
}

func TestExpiredKeysVanishFromKeysAndExists(t *testing.T) {
	s, clock := newClockedStore()
	s.SetWithTTL("gone", nil, time.Second)
	s.Set("stays", nil)
	clock.advance(2 * time.Second)
	if got := s.Keys("*"); len(got) != 1 || got[0] != "stays" {
		t.Fatalf("Keys = %v", got)
	}
	if got := s.Exists("gone", "stays"); got != 1 {
		t.Fatalf("Exists = %d", got)
	}
}

func TestAppendStore(t *testing.T) {
	s := NewStore()
	if n := s.Append("k", []byte("ab")); n != 2 {
		t.Fatalf("first append len = %d", n)
	}
	if n := s.Append("k", []byte("cd")); n != 4 {
		t.Fatalf("second append len = %d", n)
	}
	v, _ := s.Get("k")
	if string(v) != "abcd" {
		t.Fatalf("value = %q", v)
	}
}

// --- end-to-end over RESP ---

func TestEndToEndTTLCommands(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	if err := c.SetEX("session", []byte("tok"), 30*time.Second); err != nil {
		t.Fatal(err)
	}
	ttl, ok, err := c.TTL("session")
	if err != nil || !ok || ttl <= 0 || ttl > 30*time.Second {
		t.Fatalf("TTL = %v/%v/%v", ttl, ok, err)
	}
	existed, err := c.Expire("session", time.Minute)
	if err != nil || !existed {
		t.Fatalf("Expire = %v/%v", existed, err)
	}
	ttl, ok, _ = c.TTL("session")
	if !ok || ttl != time.Minute {
		t.Fatalf("TTL after Expire = %v/%v", ttl, ok)
	}
	c.Set("forever", []byte("x")) //nolint:errcheck
	ttl, ok, _ = c.TTL("forever")
	if !ok || ttl >= 0 {
		t.Fatalf("no-expiry TTL = %v/%v, want -1", ttl, ok)
	}
	if _, ok, _ := c.TTL("missing"); ok {
		t.Fatal("missing key TTL reported existence")
	}
	if err := c.SetEX("bad", nil, 0); err == nil {
		t.Fatal("zero TTL accepted by SetEX")
	}
}

func TestEndToEndMGetMSetAppend(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	if err := c.MSet(map[string][]byte{"a": []byte("1"), "b": []byte("2")}); err != nil {
		t.Fatal(err)
	}
	vals, err := c.MGet("a", "missing", "b")
	if err != nil {
		t.Fatal(err)
	}
	if string(vals[0]) != "1" || vals[1] != nil || string(vals[2]) != "2" {
		t.Fatalf("MGet = %q", vals)
	}
	n, err := c.Append("log", []byte("hello "))
	if err != nil || n != 6 {
		t.Fatalf("Append = %d/%v", n, err)
	}
	n, err = c.Append("log", []byte("world"))
	if err != nil || n != 11 {
		t.Fatalf("Append = %d/%v", n, err)
	}
	v, ok, _ := c.Get("log")
	if !ok || !bytes.Equal(v, []byte("hello world")) {
		t.Fatalf("log = %q", v)
	}
	if err := c.MSet(nil); err == nil {
		t.Fatal("empty MSet accepted")
	}
}
