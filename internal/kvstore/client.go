package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"time"
)

// Client is a RESP client for a kvstore (or Redis-compatible) server.
// It is safe for sequential use only; the workload functions each open
// their own client, matching the paper's one-function-per-node model.
type Client struct {
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	timeout time.Duration // per-operation I/O deadline (0 = none)
}

// Dial connects to a kvstore server with the given timeout. The timeout
// also bounds each subsequent operation's I/O as a deadline, so a server
// dying mid-frame fails the call instead of wedging the client forever
// with the connection held open.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("kvstore: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn), timeout: timeout}, nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

// do sends one command and reads one reply.
func (c *Client) do(args ...[]byte) (respValue, error) {
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return respValue{}, fmt.Errorf("kvstore: deadline: %w", err)
		}
	}
	if err := writeCommand(c.w, args...); err != nil {
		return respValue{}, fmt.Errorf("kvstore: send: %w", err)
	}
	v, err := readValue(c.r)
	if err != nil {
		return respValue{}, fmt.Errorf("kvstore: recv: %w", err)
	}
	if v.kind == '-' {
		return respValue{}, fmt.Errorf("kvstore: server: %s", v.str)
	}
	return v, nil
}

// Ping round-trips a PING.
func (c *Client) Ping() error {
	v, err := c.do([]byte("PING"))
	if err != nil {
		return err
	}
	if v.kind != '+' || v.str != "PONG" {
		return errors.New("kvstore: unexpected PING reply")
	}
	return nil
}

// Set stores value under key.
func (c *Client) Set(key string, value []byte) error {
	v, err := c.do([]byte("SET"), []byte(key), value)
	if err != nil {
		return err
	}
	if v.kind != '+' || v.str != "OK" {
		return errors.New("kvstore: unexpected SET reply")
	}
	return nil
}

// SetNX stores value only if key is absent; reports whether it stored.
func (c *Client) SetNX(key string, value []byte) (bool, error) {
	v, err := c.do([]byte("SETNX"), []byte(key), value)
	if err != nil {
		return false, err
	}
	return v.num == 1, nil
}

// Get fetches key; ok=false means the key does not exist.
func (c *Client) Get(key string) (value []byte, ok bool, err error) {
	v, err := c.do([]byte("GET"), []byte(key))
	if err != nil {
		return nil, false, err
	}
	if v.null {
		return nil, false, nil
	}
	return v.bulk, true, nil
}

// Del removes keys, returning how many existed.
func (c *Client) Del(keys ...string) (int, error) {
	args := [][]byte{[]byte("DEL")}
	for _, k := range keys {
		args = append(args, []byte(k))
	}
	v, err := c.do(args...)
	if err != nil {
		return 0, err
	}
	return int(v.num), nil
}

// Exists returns how many of the keys exist.
func (c *Client) Exists(keys ...string) (int, error) {
	args := [][]byte{[]byte("EXISTS")}
	for _, k := range keys {
		args = append(args, []byte(k))
	}
	v, err := c.do(args...)
	if err != nil {
		return 0, err
	}
	return int(v.num), nil
}

// Incr increments the integer at key by one and returns the new value.
func (c *Client) Incr(key string) (int64, error) {
	v, err := c.do([]byte("INCR"), []byte(key))
	if err != nil {
		return 0, err
	}
	return v.num, nil
}

// IncrBy adds delta to the integer at key and returns the new value.
func (c *Client) IncrBy(key string, delta int64) (int64, error) {
	v, err := c.do([]byte("INCRBY"), []byte(key), []byte(fmt.Sprintf("%d", delta)))
	if err != nil {
		return 0, err
	}
	return v.num, nil
}

// Keys lists keys matching a glob pattern.
func (c *Client) Keys(pattern string) ([]string, error) {
	v, err := c.do([]byte("KEYS"), []byte(pattern))
	if err != nil {
		return nil, err
	}
	if v.kind != '*' {
		return nil, errors.New("kvstore: unexpected KEYS reply")
	}
	out := make([]string, len(v.array))
	for i, el := range v.array {
		out[i] = string(el.bulk)
	}
	return out, nil
}

// DBSize returns the number of keys on the server.
func (c *Client) DBSize() (int, error) {
	v, err := c.do([]byte("DBSIZE"))
	if err != nil {
		return 0, err
	}
	return int(v.num), nil
}

// FlushAll clears the server's keyspace.
func (c *Client) FlushAll() error {
	_, err := c.do([]byte("FLUSHALL"))
	return err
}

// SetEX stores value under key with a time-to-live (rounded up to whole
// seconds on the wire, as Redis EX does).
func (c *Client) SetEX(key string, value []byte, ttl time.Duration) error {
	secs := int64((ttl + time.Second - 1) / time.Second)
	if secs <= 0 {
		return errors.New("kvstore: SetEX requires a positive TTL")
	}
	v, err := c.do([]byte("SET"), []byte(key), value, []byte("EX"), []byte(strconv.FormatInt(secs, 10)))
	if err != nil {
		return err
	}
	if v.kind != '+' || v.str != "OK" {
		return errors.New("kvstore: unexpected SET reply")
	}
	return nil
}

// Expire sets a TTL on an existing key; reports whether the key exists.
func (c *Client) Expire(key string, ttl time.Duration) (bool, error) {
	secs := int64(ttl / time.Second)
	v, err := c.do([]byte("EXPIRE"), []byte(key), []byte(strconv.FormatInt(secs, 10)))
	if err != nil {
		return false, err
	}
	return v.num == 1, nil
}

// TTL returns a key's remaining time-to-live. Following Redis: ok=false
// means no such key; ttl<0 means the key has no expiry.
func (c *Client) TTL(key string) (ttl time.Duration, ok bool, err error) {
	v, err := c.do([]byte("TTL"), []byte(key))
	if err != nil {
		return 0, false, err
	}
	switch {
	case v.num == -2:
		return 0, false, nil
	case v.num == -1:
		return -1, true, nil
	default:
		return time.Duration(v.num) * time.Second, true, nil
	}
}

// Append appends data to the value at key and returns the new length.
func (c *Client) Append(key string, data []byte) (int, error) {
	v, err := c.do([]byte("APPEND"), []byte(key), data)
	if err != nil {
		return 0, err
	}
	return int(v.num), nil
}

// MGet fetches several keys at once; missing keys yield nil entries.
func (c *Client) MGet(keys ...string) ([][]byte, error) {
	args := [][]byte{[]byte("MGET")}
	for _, k := range keys {
		args = append(args, []byte(k))
	}
	v, err := c.do(args...)
	if err != nil {
		return nil, err
	}
	if v.kind != '*' || len(v.array) != len(keys) {
		return nil, errors.New("kvstore: unexpected MGET reply")
	}
	out := make([][]byte, len(keys))
	for i, el := range v.array {
		if !el.null {
			out[i] = el.bulk
		}
	}
	return out, nil
}

// MSet stores several key/value pairs at once.
func (c *Client) MSet(pairs map[string][]byte) error {
	if len(pairs) == 0 {
		return errors.New("kvstore: MSet requires at least one pair")
	}
	args := [][]byte{[]byte("MSET")}
	// Deterministic order keeps the wire traffic reproducible.
	keys := make([]string, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		args = append(args, []byte(k), pairs[k])
	}
	_, err := c.do(args...)
	return err
}
