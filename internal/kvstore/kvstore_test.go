package kvstore

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// --- Store unit tests ---

func TestStoreSetGet(t *testing.T) {
	s := NewStore()
	if existed := s.Set("k", []byte("v")); existed {
		t.Fatal("fresh key reported as existing")
	}
	if existed := s.Set("k", []byte("v2")); !existed {
		t.Fatal("overwrite not reported as existing")
	}
	v, ok := s.Get("k")
	if !ok || string(v) != "v2" {
		t.Fatalf("Get = %q/%v", v, ok)
	}
}

func TestStoreGetReturnsCopy(t *testing.T) {
	s := NewStore()
	s.Set("k", []byte("abc"))
	v, _ := s.Get("k")
	v[0] = 'X'
	v2, _ := s.Get("k")
	if string(v2) != "abc" {
		t.Fatal("Get leaked internal storage")
	}
}

func TestStoreSetCopiesInput(t *testing.T) {
	s := NewStore()
	buf := []byte("abc")
	s.Set("k", buf)
	buf[0] = 'X'
	v, _ := s.Get("k")
	if string(v) != "abc" {
		t.Fatal("Set aliased caller's buffer")
	}
}

func TestStoreSetNX(t *testing.T) {
	s := NewStore()
	if !s.SetNX("k", []byte("1")) {
		t.Fatal("first SetNX should store")
	}
	if s.SetNX("k", []byte("2")) {
		t.Fatal("second SetNX should not store")
	}
	v, _ := s.Get("k")
	if string(v) != "1" {
		t.Fatal("SetNX overwrote")
	}
}

func TestStoreDelExists(t *testing.T) {
	s := NewStore()
	s.Set("a", nil)
	s.Set("b", nil)
	if got := s.Exists("a", "b", "c", "a"); got != 3 {
		t.Fatalf("Exists = %d, want 3 (duplicates count)", got)
	}
	if got := s.Del("a", "c"); got != 1 {
		t.Fatalf("Del = %d, want 1", got)
	}
	if got := s.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
}

func TestStoreIncrBy(t *testing.T) {
	s := NewStore()
	n, err := s.IncrBy("ctr", 5)
	if err != nil || n != 5 {
		t.Fatalf("IncrBy fresh = %d, %v", n, err)
	}
	n, err = s.IncrBy("ctr", -2)
	if err != nil || n != 3 {
		t.Fatalf("IncrBy = %d, %v", n, err)
	}
	s.Set("txt", []byte("hello"))
	if _, err := s.IncrBy("txt", 1); err == nil {
		t.Fatal("IncrBy on text must fail")
	}
}

func TestStoreKeysPattern(t *testing.T) {
	s := NewStore()
	for _, k := range []string{"user:1", "user:2", "job:9"} {
		s.Set(k, nil)
	}
	got := s.Keys("user:*")
	if len(got) != 2 || got[0] != "user:1" || got[1] != "user:2" {
		t.Fatalf("Keys = %v", got)
	}
	if all := s.Keys("*"); len(all) != 3 {
		t.Fatalf("Keys(*) = %v", all)
	}
}

func TestStoreFlush(t *testing.T) {
	s := NewStore()
	s.Set("a", nil)
	s.Flush()
	if s.Len() != 0 {
		t.Fatal("Flush left keys behind")
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%10)
				s.Set(key, []byte("v"))
				s.Get(key)
				s.IncrBy(fmt.Sprintf("ctr%d", g), 1) //nolint:errcheck
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < 8; g++ {
		n, err := s.IncrBy(fmt.Sprintf("ctr%d", g), 0)
		if err != nil || n != 200 {
			t.Fatalf("counter %d = %d, %v", g, n, err)
		}
	}
}

// Property: after Set(k,v), Get(k) returns v, for arbitrary binary values.
func TestStoreRoundTripProperty(t *testing.T) {
	s := NewStore()
	prop := func(key string, val []byte) bool {
		s.Set(key, val)
		got, ok := s.Get(key)
		return ok && bytes.Equal(got, val)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// --- RESP parser tests ---

func respRead(t *testing.T, s string) respValue {
	t.Helper()
	v, err := readValue(bufio.NewReader(strings.NewReader(s)))
	if err != nil {
		t.Fatalf("readValue(%q): %v", s, err)
	}
	return v
}

func TestRESPParseKinds(t *testing.T) {
	if v := respRead(t, "+OK\r\n"); v.kind != '+' || v.str != "OK" {
		t.Fatalf("simple: %+v", v)
	}
	if v := respRead(t, ":42\r\n"); v.kind != ':' || v.num != 42 {
		t.Fatalf("int: %+v", v)
	}
	if v := respRead(t, "$5\r\nhello\r\n"); string(v.bulk) != "hello" {
		t.Fatalf("bulk: %+v", v)
	}
	if v := respRead(t, "$-1\r\n"); !v.null {
		t.Fatalf("null bulk: %+v", v)
	}
	if v := respRead(t, "-ERR boom\r\n"); v.kind != '-' || v.str != "ERR boom" {
		t.Fatalf("error: %+v", v)
	}
	v := respRead(t, "*2\r\n$1\r\na\r\n:7\r\n")
	if len(v.array) != 2 || string(v.array[0].bulk) != "a" || v.array[1].num != 7 {
		t.Fatalf("array: %+v", v)
	}
}

func TestRESPBulkWithBinaryData(t *testing.T) {
	payload := []byte{0, 1, 2, '\r', '\n', 255}
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeBulk(w, payload); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	v, err := readValue(bufio.NewReader(&buf))
	if err != nil || !bytes.Equal(v.bulk, payload) {
		t.Fatalf("binary round trip failed: %v %v", v.bulk, err)
	}
}

func TestRESPRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"?x\r\n", "$abc\r\n", ":x\r\n", "+no-terminator\n", "*1\r\n:1x\r\n"} {
		if _, err := readValue(bufio.NewReader(strings.NewReader(bad))); err == nil {
			t.Fatalf("accepted garbage %q", bad)
		}
	}
}

func TestRESPRejectsOversizedBulk(t *testing.T) {
	huge := fmt.Sprintf("$%d\r\n", maxBulkLen+1)
	if _, err := readValue(bufio.NewReader(strings.NewReader(huge))); err == nil {
		t.Fatal("accepted oversized bulk length")
	}
}

// Property: any command written by writeCommand parses back identically.
func TestRESPCommandRoundTripProperty(t *testing.T) {
	prop := func(parts [][]byte) bool {
		if len(parts) == 0 {
			return true
		}
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := writeCommand(w, parts...); err != nil {
			return false
		}
		got, err := readCommand(bufio.NewReader(&buf))
		if err != nil || len(got) != len(parts) {
			return false
		}
		for i := range parts {
			if !bytes.Equal(got[i], parts[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// --- End-to-end server/client tests ---

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestEndToEndBasicOps(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("greeting", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get("greeting")
	if err != nil || !ok || string(v) != "hello" {
		t.Fatalf("Get = %q/%v/%v", v, ok, err)
	}
	if _, ok, _ := c.Get("missing"); ok {
		t.Fatal("missing key reported present")
	}
	n, err := c.Incr("hits")
	if err != nil || n != 1 {
		t.Fatalf("Incr = %d, %v", n, err)
	}
	n, err = c.IncrBy("hits", 9)
	if err != nil || n != 10 {
		t.Fatalf("IncrBy = %d, %v", n, err)
	}
	cnt, err := c.Del("greeting", "missing")
	if err != nil || cnt != 1 {
		t.Fatalf("Del = %d, %v", cnt, err)
	}
	sz, err := c.DBSize()
	if err != nil || sz != 1 {
		t.Fatalf("DBSize = %d, %v", sz, err)
	}
}

func TestEndToEndSetNXAndExists(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	stored, err := c.SetNX("once", []byte("1"))
	if err != nil || !stored {
		t.Fatalf("SetNX first = %v, %v", stored, err)
	}
	stored, err = c.SetNX("once", []byte("2"))
	if err != nil || stored {
		t.Fatalf("SetNX second = %v, %v", stored, err)
	}
	n, err := c.Exists("once", "never")
	if err != nil || n != 1 {
		t.Fatalf("Exists = %d, %v", n, err)
	}
}

func TestEndToEndKeysAndFlush(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	for i := 0; i < 5; i++ {
		if err := c.Set(fmt.Sprintf("item:%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := c.Keys("item:*")
	if err != nil || len(keys) != 5 {
		t.Fatalf("Keys = %v, %v", keys, err)
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	sz, _ := c.DBSize()
	if sz != 0 {
		t.Fatalf("DBSize after flush = %d", sz)
	}
}

func TestEndToEndServerError(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	c.Set("txt", []byte("abc")) //nolint:errcheck
	if _, err := c.Incr("txt"); err == nil || !strings.Contains(err.Error(), "integer") {
		t.Fatalf("Incr on text: err = %v, want integer error", err)
	}
	// The connection must survive a command error.
	if err := c.Ping(); err != nil {
		t.Fatalf("connection dead after error: %v", err)
	}
}

func TestEndToEndUnknownCommand(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w := bufio.NewWriter(conn)
	writeCommand(w, []byte("BOGUS")) //nolint:errcheck
	v, err := readValue(bufio.NewReader(conn))
	if err != nil || v.kind != '-' {
		t.Fatalf("want error reply, got %+v, %v", v, err)
	}
}

func TestEndToEndConcurrentClients(t *testing.T) {
	_, addr := startServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr, time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 100; i++ {
				if _, err := c.Incr("shared"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	c := dial(t, addr)
	n, err := c.IncrBy("shared", 0)
	if err != nil || n != 400 {
		t.Fatalf("shared counter = %d, %v, want 400", n, err)
	}
}

func TestServerCloseIsIdempotentAndUnblocksClients(t *testing.T) {
	srv, addr := startServer(t)
	c := dial(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err == nil {
		t.Fatal("ping succeeded after server close")
	}
}

func TestWrongArityReportsError(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w := bufio.NewWriter(conn)
	writeCommand(w, []byte("SET"), []byte("only-key")) //nolint:errcheck
	v, err := readValue(bufio.NewReader(conn))
	if err != nil || v.kind != '-' || !strings.Contains(v.str, "wrong number of arguments") {
		t.Fatalf("got %+v, %v", v, err)
	}
}
