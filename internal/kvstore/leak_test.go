package kvstore

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"
)

// TestClientMidFrameErrorDoesNotLeakConn pairs the client with a raw
// listener that answers a GET with a truncated RESP bulk string (the
// header promises 100 bytes, two arrive) and never finishes it. The
// client must surface an error at its deadline (not wedge forever
// holding the conn), and Close must actually release the TCP connection
// — the peer proves it by observing EOF instead of a read timeout.
func TestClientMidFrameErrorDoesNotLeakConn(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	conns := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conns <- conn
		buf := make([]byte, 4096)
		conn.Read(buf)                       //nolint:errcheck // the command; content irrelevant
		conn.Write([]byte("$100\r\nab"))     //nolint:errcheck // truncated bulk string, never completed
	}()
	c, err := Dial(ln.Addr().String(), 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get("k"); err == nil {
		t.Fatal("truncated reply did not error")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close after mid-frame error: %v", err)
	}
	sconn := <-conns
	defer sconn.Close()
	sconn.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	buf := make([]byte, 64)
	for {
		_, rerr := sconn.Read(buf)
		if rerr == nil {
			continue
		}
		if errors.Is(rerr, os.ErrDeadlineExceeded) {
			t.Fatal("client connection still open after Close: leaked")
		}
		return // EOF or reset: the client really hung up
	}
}
