package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// This file implements the wire format: RESP2 (the protocol Redis clients
// speak). Requests are arrays of bulk strings; responses are simple
// strings, errors, integers, bulk strings, nulls, or arrays.

// respValue is one parsed RESP value.
type respValue struct {
	kind  byte // '+', '-', ':', '$', '*'
	str   string
	num   int64
	bulk  []byte // nil means null bulk string when kind == '$'
	array []respValue
	null  bool
}

var errProtocol = errors.New("kvstore: RESP protocol error")

const maxBulkLen = 64 << 20 // 64 MiB guard against hostile lengths

// readLine reads a CRLF-terminated line without the terminator.
func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, errProtocol
	}
	return line[:len(line)-2], nil
}

// readValue parses one RESP value from the stream.
func readValue(r *bufio.Reader) (respValue, error) {
	line, err := readLine(r)
	if err != nil {
		return respValue{}, err
	}
	if len(line) == 0 {
		return respValue{}, errProtocol
	}
	kind, rest := line[0], string(line[1:])
	switch kind {
	case '+':
		return respValue{kind: '+', str: rest}, nil
	case '-':
		return respValue{kind: '-', str: rest}, nil
	case ':':
		n, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			return respValue{}, errProtocol
		}
		return respValue{kind: ':', num: n}, nil
	case '$':
		n, err := strconv.ParseInt(rest, 10, 64)
		if err != nil || n > maxBulkLen {
			return respValue{}, errProtocol
		}
		if n < 0 {
			return respValue{kind: '$', null: true}, nil
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(r, buf); err != nil {
			return respValue{}, err
		}
		if buf[n] != '\r' || buf[n+1] != '\n' {
			return respValue{}, errProtocol
		}
		return respValue{kind: '$', bulk: buf[:n]}, nil
	case '*':
		n, err := strconv.ParseInt(rest, 10, 64)
		if err != nil || n > 1<<20 {
			return respValue{}, errProtocol
		}
		if n < 0 {
			return respValue{kind: '*', null: true}, nil
		}
		arr := make([]respValue, 0, n)
		for i := int64(0); i < n; i++ {
			v, err := readValue(r)
			if err != nil {
				return respValue{}, err
			}
			arr = append(arr, v)
		}
		return respValue{kind: '*', array: arr}, nil
	default:
		return respValue{}, errProtocol
	}
}

// readCommand parses a client request: an array of bulk strings. The first
// element is the command name; the rest are arguments.
func readCommand(r *bufio.Reader) ([][]byte, error) {
	v, err := readValue(r)
	if err != nil {
		return nil, err
	}
	if v.kind != '*' || v.null || len(v.array) == 0 {
		return nil, errProtocol
	}
	args := make([][]byte, len(v.array))
	for i, el := range v.array {
		if el.kind != '$' || el.null {
			return nil, errProtocol
		}
		args[i] = el.bulk
	}
	return args, nil
}

// Writers. Each returns the first write error; callers flush once per reply.

func writeSimple(w *bufio.Writer, s string) error {
	_, err := fmt.Fprintf(w, "+%s\r\n", s)
	return err
}

func writeError(w *bufio.Writer, msg string) error {
	_, err := fmt.Fprintf(w, "-ERR %s\r\n", msg)
	return err
}

func writeInt(w *bufio.Writer, n int64) error {
	_, err := fmt.Fprintf(w, ":%d\r\n", n)
	return err
}

func writeBulk(w *bufio.Writer, b []byte) error {
	if b == nil {
		_, err := w.WriteString("$-1\r\n")
		return err
	}
	if _, err := fmt.Fprintf(w, "$%d\r\n", len(b)); err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err := w.WriteString("\r\n")
	return err
}

func writeArrayHeader(w *bufio.Writer, n int) error {
	_, err := fmt.Fprintf(w, "*%d\r\n", n)
	return err
}

func writeCommand(w *bufio.Writer, args ...[]byte) error {
	if err := writeArrayHeader(w, len(args)); err != nil {
		return err
	}
	for _, a := range args {
		if err := writeBulk(w, a); err != nil {
			return err
		}
	}
	return w.Flush()
}
