// Package kvstore is the repository's Redis substitute: an in-memory
// key-value store served over a RESP (REdis Serialization Protocol) TCP
// endpoint, with a matching client.
//
// The paper hosts a Redis server on a dedicated SBC for the RedisInsert and
// RedisUpdate workload functions (Table I). Building the store from scratch
// keeps the network-bound workloads exercising a real request/response
// protocol path — connection handling, serialization, server-side work —
// without an external dependency.
package kvstore

import (
	"fmt"
	"path"
	"sort"
	"strconv"
	"sync"
	"time"
)

// entry is one stored value with an optional expiry deadline.
type entry struct {
	value    []byte
	expireAt time.Time // zero = never expires
}

func (e entry) expired(now time.Time) bool {
	return !e.expireAt.IsZero() && !now.Before(e.expireAt)
}

// Store is a thread-safe in-memory key-value map with optional per-key
// TTLs. Expired keys are reaped lazily, the way Redis mostly does it.
// The zero value is not usable; create one with NewStore.
type Store struct {
	mu   sync.RWMutex
	data map[string]entry
	now  func() time.Time
}

// NewStore returns an empty store on the wall clock.
func NewStore() *Store { return NewStoreWithClock(time.Now) }

// NewStoreWithClock returns a store whose TTLs follow the given clock
// (tests inject a fake one).
func NewStoreWithClock(now func() time.Time) *Store {
	if now == nil {
		now = time.Now
	}
	return &Store{data: make(map[string]entry), now: now}
}

// getLive fetches a non-expired entry, reaping it if stale. Caller must
// hold the write lock.
func (s *Store) getLive(key string) (entry, bool) {
	e, ok := s.data[key]
	if !ok {
		return entry{}, false
	}
	if e.expired(s.now()) {
		delete(s.data, key)
		return entry{}, false
	}
	return e, true
}

// Set stores value under key (clearing any TTL), returning true if the
// key already existed.
func (s *Store) Set(key string, value []byte) bool {
	return s.SetWithTTL(key, value, 0)
}

// SetWithTTL stores value under key with a time-to-live (0 = no expiry),
// returning true if the key already existed.
func (s *Store) SetWithTTL(key string, value []byte, ttl time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, existed := s.getLive(key)
	e := entry{value: append([]byte(nil), value...)}
	if ttl > 0 {
		e.expireAt = s.now().Add(ttl)
	}
	s.data[key] = e
	return existed
}

// SetNX stores value only if key does not exist; reports whether it stored.
func (s *Store) SetNX(key string, value []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, existed := s.getLive(key); existed {
		return false
	}
	s.data[key] = entry{value: append([]byte(nil), value...)}
	return true
}

// Get returns a copy of the value for key, or ok=false.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.getLive(key)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), e.value...), true
}

// Append appends data to the value at key (creating it if absent) and
// returns the new length.
func (s *Store) Append(key string, data []byte) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, _ := s.getLive(key)
	e.value = append(e.value, data...)
	s.data[key] = e
	return len(e.value)
}

// Expire sets a TTL on an existing key; reports whether the key exists.
func (s *Store) Expire(key string, ttl time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.getLive(key)
	if !ok {
		return false
	}
	if ttl <= 0 {
		delete(s.data, key)
		return true
	}
	e.expireAt = s.now().Add(ttl)
	s.data[key] = e
	return true
}

// TTL returns the remaining time-to-live. Following Redis: ok=false means
// the key does not exist; ttl<0 means the key exists without an expiry.
func (s *Store) TTL(key string) (ttl time.Duration, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.getLive(key)
	if !ok {
		return 0, false
	}
	if e.expireAt.IsZero() {
		return -1, true
	}
	return e.expireAt.Sub(s.now()), true
}

// Del removes keys and returns how many existed.
func (s *Store) Del(keys ...string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, k := range keys {
		if _, ok := s.getLive(k); ok {
			delete(s.data, k)
			n++
		}
	}
	return n
}

// Exists returns how many of the given keys exist.
func (s *Store) Exists(keys ...string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, k := range keys {
		if _, ok := s.getLive(k); ok {
			n++
		}
	}
	return n
}

// IncrBy adds delta to the integer stored at key (0 if absent) and returns
// the new value. It fails if the current value is not an integer.
func (s *Store) IncrBy(key string, delta int64) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := int64(0)
	e, ok := s.getLive(key)
	if ok {
		parsed, err := strconv.ParseInt(string(e.value), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("kvstore: value at %q is not an integer", key)
		}
		cur = parsed
	}
	cur += delta
	e.value = []byte(strconv.FormatInt(cur, 10))
	s.data[key] = e
	return cur, nil
}

// Keys returns the sorted live keys matching a glob pattern ("*" for all).
func (s *Store) Keys(pattern string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	var out []string
	for k, e := range s.data {
		if e.expired(now) {
			delete(s.data, k)
			continue
		}
		if ok, err := path.Match(pattern, k); err == nil && ok {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live keys (DBSIZE).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	n := 0
	for k, e := range s.data {
		if e.expired(now) {
			delete(s.data, k)
			continue
		}
		n++
	}
	return n
}

// Flush removes all keys (FLUSHALL).
func (s *Store) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = make(map[string]entry)
}
