package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Server serves a Store over RESP on a TCP listener.
type Server struct {
	store *Store

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a server backed by store (a fresh store if nil).
func NewServer(store *Store) *Server {
	if store == nil {
		store = NewStore()
	}
	return &Server{store: store, conns: make(map[net.Conn]struct{})}
}

// Store returns the underlying store (useful for test assertions).
func (s *Server) Store() *Store { return s.store }

// Listen binds to addr (e.g. "127.0.0.1:0") and begins accepting
// connections in the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("kvstore: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("kvstore: server already closed")
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Close stops accepting, closes all live connections, and waits for
// handler goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		args, err := readCommand(r)
		if err != nil {
			return // client hung up or spoke garbage; drop the connection
		}
		quit := s.dispatch(w, args)
		if err := w.Flush(); err != nil || quit {
			return
		}
	}
}

// dispatch executes one command and writes the reply. It returns true when
// the connection should close (QUIT).
func (s *Server) dispatch(w *bufio.Writer, args [][]byte) bool {
	cmd := strings.ToUpper(string(args[0]))
	argv := args[1:]
	wrongArgs := func() { writeError(w, fmt.Sprintf("wrong number of arguments for '%s'", strings.ToLower(cmd))) } //nolint:errcheck

	switch cmd {
	case "PING":
		if len(argv) == 1 {
			writeBulk(w, argv[0]) //nolint:errcheck
		} else {
			writeSimple(w, "PONG") //nolint:errcheck
		}
	case "SET":
		// SET key value [EX seconds]
		switch len(argv) {
		case 2:
			s.store.Set(string(argv[0]), argv[1])
		case 4:
			if !strings.EqualFold(string(argv[2]), "EX") {
				writeError(w, "syntax error") //nolint:errcheck
				return false
			}
			secs, err := strconv.ParseInt(string(argv[3]), 10, 64)
			if err != nil || secs <= 0 {
				writeError(w, "invalid expire time in 'set' command") //nolint:errcheck
				return false
			}
			s.store.SetWithTTL(string(argv[0]), argv[1], time.Duration(secs)*time.Second)
		default:
			wrongArgs()
			return false
		}
		writeSimple(w, "OK") //nolint:errcheck
	case "APPEND":
		if len(argv) != 2 {
			wrongArgs()
			return false
		}
		writeInt(w, int64(s.store.Append(string(argv[0]), argv[1]))) //nolint:errcheck
	case "EXPIRE":
		if len(argv) != 2 {
			wrongArgs()
			return false
		}
		secs, err := strconv.ParseInt(string(argv[1]), 10, 64)
		if err != nil {
			writeError(w, "value is not an integer or out of range") //nolint:errcheck
			return false
		}
		writeInt(w, boolToInt(s.store.Expire(string(argv[0]), time.Duration(secs)*time.Second))) //nolint:errcheck
	case "TTL":
		if len(argv) != 1 {
			wrongArgs()
			return false
		}
		ttl, ok := s.store.TTL(string(argv[0]))
		switch {
		case !ok:
			writeInt(w, -2) //nolint:errcheck
		case ttl < 0:
			writeInt(w, -1) //nolint:errcheck
		default:
			// Round up like Redis: a key with 0.5s left reports 1.
			writeInt(w, int64((ttl+time.Second-1)/time.Second)) //nolint:errcheck
		}
	case "MGET":
		if len(argv) == 0 {
			wrongArgs()
			return false
		}
		writeArrayHeader(w, len(argv)) //nolint:errcheck
		for _, k := range argv {
			v, ok := s.store.Get(string(k))
			if !ok {
				v = nil
			}
			writeBulk(w, v) //nolint:errcheck
		}
	case "MSET":
		if len(argv) == 0 || len(argv)%2 != 0 {
			wrongArgs()
			return false
		}
		for i := 0; i < len(argv); i += 2 {
			s.store.Set(string(argv[i]), argv[i+1])
		}
		writeSimple(w, "OK") //nolint:errcheck
	case "SETNX":
		if len(argv) != 2 {
			wrongArgs()
			return false
		}
		stored := s.store.SetNX(string(argv[0]), argv[1])
		writeInt(w, boolToInt(stored)) //nolint:errcheck
	case "GET":
		if len(argv) != 1 {
			wrongArgs()
			return false
		}
		v, ok := s.store.Get(string(argv[0]))
		if !ok {
			v = nil
		}
		writeBulk(w, v) //nolint:errcheck
	case "DEL":
		if len(argv) == 0 {
			wrongArgs()
			return false
		}
		writeInt(w, int64(s.store.Del(byteSlicesToStrings(argv)...))) //nolint:errcheck
	case "EXISTS":
		if len(argv) == 0 {
			wrongArgs()
			return false
		}
		writeInt(w, int64(s.store.Exists(byteSlicesToStrings(argv)...))) //nolint:errcheck
	case "INCR", "DECR", "INCRBY", "DECRBY":
		delta, err := parseDelta(cmd, argv)
		if err != nil {
			writeError(w, err.Error()) //nolint:errcheck
			return false
		}
		n, err := s.store.IncrBy(string(argv[0]), delta)
		if err != nil {
			writeError(w, "value is not an integer or out of range") //nolint:errcheck
			return false
		}
		writeInt(w, n) //nolint:errcheck
	case "KEYS":
		if len(argv) != 1 {
			wrongArgs()
			return false
		}
		keys := s.store.Keys(string(argv[0]))
		writeArrayHeader(w, len(keys)) //nolint:errcheck
		for _, k := range keys {
			writeBulk(w, []byte(k)) //nolint:errcheck
		}
	case "DBSIZE":
		writeInt(w, int64(s.store.Len())) //nolint:errcheck
	case "FLUSHALL":
		s.store.Flush()
		writeSimple(w, "OK") //nolint:errcheck
	case "QUIT":
		writeSimple(w, "OK") //nolint:errcheck
		return true
	default:
		writeError(w, fmt.Sprintf("unknown command '%s'", strings.ToLower(cmd))) //nolint:errcheck
	}
	return false
}

func parseDelta(cmd string, argv [][]byte) (int64, error) {
	switch cmd {
	case "INCR", "DECR":
		if len(argv) != 1 {
			return 0, fmt.Errorf("wrong number of arguments for '%s'", strings.ToLower(cmd))
		}
		if cmd == "INCR" {
			return 1, nil
		}
		return -1, nil
	default: // INCRBY, DECRBY
		if len(argv) != 2 {
			return 0, fmt.Errorf("wrong number of arguments for '%s'", strings.ToLower(cmd))
		}
		n, err := strconv.ParseInt(string(argv[1]), 10, 64)
		if err != nil {
			return 0, errors.New("value is not an integer or out of range")
		}
		if cmd == "DECRBY" {
			n = -n
		}
		return n, nil
	}
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func byteSlicesToStrings(bs [][]byte) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = string(b)
	}
	return out
}
