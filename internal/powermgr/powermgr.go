// Package powermgr is the cluster's dynamic power-management plane: the
// component that finally closes the loop between the orchestrator's
// scheduling decisions and the GPIO power-control plane the paper builds
// its energy story on (Sec III-b, Sec IV-D).
//
// Without a manager, workers follow a static per-job policy (power-cycle
// around every invocation, or stay up forever). The Manager replaces that
// with a demand-driven state machine per node:
//
//	       RequestUp (wake-on-demand)
//	Down ────────────────────────────▶ Waking
//	 ▲                                   │ boot latency elapses
//	 │ idle timeout / fault / drain      ▼
//	 └────────────────────────────────  Up
//
// Three mechanisms hang off it:
//
//   - Idle power-down: a node that stays idle past IdleTimeout is powered
//     off (≈0.13 W instead of ≈1.10 W on the paper's SBCs). MinUp adds
//     hysteresis — a freshly booted node stays up at least that long — so
//     bursty arrivals do not flap nodes on and off.
//   - Wake-on-demand: dispatching against a powered-down node first powers
//     it up; the job's queue wait absorbs the boot latency (sim: modeled
//     virtual delay; live: a real wall-clock delay), and the orchestrator
//     records it as a `boot` span on the invocation's critical path.
//   - Power capping: CapW bounds the cluster's worst-case draw by limiting
//     how many nodes may be powered simultaneously (CapW / NodeW, both in
//     watts). Wakes beyond the cap park in a FIFO queue — backpressure the
//     submitting jobs feel as queue wait — and start as capacity frees.
//   - Predictive warm floor (SetWarmTarget): a forecast controller
//     (internal/forecast) may steer the manager ahead of demand —
//     pre-waking nodes before a load ramp so jobs land on warm workers,
//     and pre-sleeping idle surplus ahead of a trough instead of waiting
//     out the idle timeout. Reactive wake-on-demand keeps working
//     underneath; with no controller attached the manager behaves exactly
//     as before this mechanism existed.
//
// The Manager is mode-agnostic: it talks to nodes through the Node
// interface and tells time through Runtime, so the same code drives
// simulated SBCs on the virtual clock and live TCP workers on the wall
// clock. It never draws randomness and schedules timers only when enabled,
// so a cluster with no manager configured is byte-identical to one built
// before this package existed.
package powermgr

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"microfaas/internal/power"
	"microfaas/internal/telemetry"
)

// Runtime is the manager's clock: Now returns elapsed cluster time and
// After schedules fn after d, returning a cancel function. core.SimRuntime
// (virtual time) and core.WallRuntime (wall time) both satisfy it.
type Runtime interface {
	// Now returns elapsed cluster time.
	Now() time.Duration
	// After schedules fn after d; the returned function cancels it.
	After(d time.Duration, fn func()) (cancel func())
}

// Node is a worker whose power plane the manager actuates. SimWorker and
// LiveWorker implement it when built in managed mode.
type Node interface {
	// ID names the node (matches its core.Worker id).
	ID() string
	// PowerUp boots a powered-down node: Off→Booting immediately,
	// Booting→Idle after the node's boot latency (virtual in sim, real
	// wall-clock in live mode), then ready is invoked exactly once on the
	// cluster runtime. Calling PowerUp on a node that is not Off is a
	// no-op that still invokes ready once the node is up.
	PowerUp(cause string, ready func())
	// PowerDown powers an idle node off, logging the transition to the
	// GPIO audit trail. It reports false — and does nothing — if the node
	// is mid-job and cannot be powered down.
	PowerDown(cause string) bool
}

// Policy is the user-facing tuning knob set, embedded in cluster configs.
type Policy struct {
	// IdleTimeout is how long a node may sit idle before the manager
	// powers it off (default 30 s).
	IdleTimeout time.Duration
	// MinUp is the hysteresis floor: a node stays powered at least this
	// long after booting, even if idle (default 2×IdleTimeout's floor of
	// 5 s). Prevents power-state flapping under bursty arrivals.
	MinUp time.Duration
	// CapW is the optional cluster-wide power budget in watts (0 = no
	// cap). The manager bounds simultaneously-powered nodes to
	// floor(CapW/NodeW), never below 1.
	CapW power.Watts
	// NodeW is one node's budgeted worst-case draw in watts used for cap
	// accounting (default: the paper SBC's busy draw, 1.96 W).
	NodeW power.Watts
	// PreSleepSlack widens the predictive pre-sleep band: SetWarmTarget
	// trims idle surplus only while more than target+PreSleepSlack nodes
	// are powered, keeping that many spares warm as burst headroom
	// (default 0 — trim straight down to the floor).
	PreSleepSlack int
	// PreSleepMax bounds how many nodes one SetWarmTarget call may
	// pre-sleep (0 = unlimited). A tick-driven forecast controller uses
	// it to drain surplus gradually instead of mass-trimming on a
	// momentary forecast dip it would re-wake a tick later.
	PreSleepMax int
	// PreSleepSlackFrac adds ceil(frac × target) nodes to PreSleepSlack,
	// scaling the burst headroom with the floor itself: a two-node floor
	// tolerates a one-node overshoot that a ten-node floor should shrug
	// off several of (default 0 — fixed slack only).
	PreSleepSlackFrac float64
	// PreSleepDebounce is how many consecutive SetWarmTarget calls must
	// observe surplus beyond the slack band before pre-sleep engages
	// (default 0 — trim on the first). It distinguishes a genuine trough
	// (surplus persists tick after tick, so trimming proceeds) from a
	// momentary forecast dip (the streak resets before it ever trims).
	PreSleepDebounce int
}

// Config assembles a Manager.
type Config struct {
	// Runtime is the cluster clock (required).
	Runtime Runtime
	// Nodes are the managed workers (required, ids must be unique).
	Nodes []Node
	// Policy tunes timeouts and the power cap.
	Policy Policy
	// Telemetry receives the powered-workers gauges and wake/power-down
	// counters (nil = disabled; the manager's behavior is identical
	// either way).
	Telemetry *telemetry.Telemetry
}

// nodeState is the manager's view of one node's power plane.
type nodeState int

const (
	// stateDown: powered off (≈0.13 W on the paper's SBCs).
	stateDown nodeState = iota
	// stateWaking: PWR_BUT pressed, boot latency in flight.
	stateWaking
	// stateUp: booted and either idle-warm or executing.
	stateUp
)

func (s nodeState) String() string {
	switch s {
	case stateDown:
		return "off"
	case stateWaking:
		return "waking"
	case stateUp:
		return "on"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// managed is the per-node record.
type managed struct {
	node Node
	idx  int // registration order

	state nodeState
	// inUse is set from the moment the orchestrator is granted the node
	// (RequestUp) until it reports the node idle (NoteIdle); the idle
	// power-down timer only runs while clear.
	inUse bool
	// upAt is when the node last finished booting, for MinUp hysteresis.
	upAt time.Duration
	// cancelIdle cancels the pending idle power-down timer, if any.
	cancelIdle func()
	// readyCbs are orchestrator callbacks waiting on the in-flight wake.
	readyCbs []func()
	// pendingWake marks the node parked in the cap FIFO.
	pendingWake bool
	// wakeCause is the cause string for a cap-parked wake.
	wakeCause string
	// prewarm marks an in-flight wake issued by SetWarmTarget rather
	// than demand: the node comes up idle-warm instead of granted. A
	// RequestUp arriving mid-boot converts the wake back to demand.
	prewarm bool
}

// Manager drives idle power-down, wake-on-demand, and power capping over a
// set of managed nodes. All methods are safe for concurrent use; the
// manager's lock is a leaf with respect to the orchestrator's (the
// orchestrator calls in while holding its own lock, and the manager
// invokes orchestrator callbacks only after releasing its lock).
type Manager struct {
	rt               Runtime
	idleTimeout      time.Duration
	minUp            time.Duration
	nodeW            power.Watts
	preSleepSlack    int
	preSleepMax      int
	preSleepFrac     float64
	preSleepDebounce int

	mu       sync.Mutex
	nodes    map[string]*managed
	order    []*managed // registration order
	capW     power.Watts
	powered  int        // nodes Up or Waking
	waitq    []*managed // FIFO of cap-blocked wakes
	draining bool
	// target is the predictive warm floor set by SetWarmTarget: keep at
	// least this many nodes powered and trim idle surplus above it.
	// −1 (the initial value) disables predictive control entirely —
	// pure reactive behavior, byte-identical to a pre-forecast build.
	target int
	// trimStreak counts consecutive SetWarmTarget calls that saw surplus
	// beyond the slack band — the PreSleepDebounce persistence counter.
	trimStreak int

	m mgrMetrics
}

// New builds a Manager and powers every node's bookkeeping down (nodes
// start Off, matching the workers' own initial state).
func New(cfg Config) (*Manager, error) {
	if cfg.Runtime == nil {
		return nil, fmt.Errorf("powermgr: a Runtime is required")
	}
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("powermgr: at least one node is required")
	}
	if cfg.Policy.IdleTimeout < 0 || cfg.Policy.MinUp < 0 || cfg.Policy.CapW < 0 || cfg.Policy.NodeW < 0 ||
		cfg.Policy.PreSleepSlack < 0 || cfg.Policy.PreSleepMax < 0 ||
		cfg.Policy.PreSleepSlackFrac < 0 || cfg.Policy.PreSleepDebounce < 0 {
		return nil, fmt.Errorf("powermgr: negative policy values")
	}
	idle := cfg.Policy.IdleTimeout
	if idle == 0 {
		idle = 30 * time.Second
	}
	minUp := cfg.Policy.MinUp
	if minUp == 0 {
		minUp = 5 * time.Second
	}
	nodeW := cfg.Policy.NodeW
	if nodeW == 0 {
		nodeW = power.DefaultSBCModel().BusyW
	}
	m := &Manager{
		rt:               cfg.Runtime,
		idleTimeout:      idle,
		minUp:            minUp,
		nodeW:            nodeW,
		preSleepSlack:    cfg.Policy.PreSleepSlack,
		preSleepMax:      cfg.Policy.PreSleepMax,
		preSleepFrac:     cfg.Policy.PreSleepSlackFrac,
		preSleepDebounce: cfg.Policy.PreSleepDebounce,
		capW:             cfg.Policy.CapW,
		nodes:            make(map[string]*managed, len(cfg.Nodes)),
		target:           -1,
	}
	for i, n := range cfg.Nodes {
		if _, dup := m.nodes[n.ID()]; dup {
			return nil, fmt.Errorf("powermgr: duplicate node id %q", n.ID())
		}
		rec := &managed{node: n, idx: i, state: stateDown}
		m.nodes[n.ID()] = rec
		m.order = append(m.order, rec)
	}
	m.initTelemetry(cfg.Telemetry)
	return m, nil
}

// maxPoweredLocked returns the cap on simultaneously-powered nodes
// (0 = unlimited). Caller holds m.mu.
func (m *Manager) maxPoweredLocked() int {
	if m.capW <= 0 {
		return 0
	}
	n := int(m.capW / m.nodeW)
	if n < 1 {
		n = 1 // a cap below one node's draw still admits one node
	}
	return n
}

// RequestUp asks for a node to be powered and granted to the orchestrator.
// It returns true when the node is already up — the caller may dispatch
// immediately. Otherwise it returns false and arranges for ready to be
// invoked (outside the manager's lock) once the node finishes booting; if
// the power cap binds, the wake parks in FIFO order until capacity frees.
// During drain, RequestUp refuses (returns false and never calls ready).
func (m *Manager) RequestUp(id, cause string, ready func()) bool {
	m.mu.Lock()
	n, ok := m.nodes[id]
	if !ok {
		m.mu.Unlock()
		panic(fmt.Sprintf("powermgr: unknown node %q", id))
	}
	if m.draining {
		m.mu.Unlock()
		return false
	}
	if n.cancelIdle != nil {
		n.cancelIdle()
		n.cancelIdle = nil
	}
	switch n.state {
	case stateUp:
		n.inUse = true
		m.mu.Unlock()
		return true
	case stateWaking:
		n.prewarm = false // demand arrived mid-boot: grant on completion
		if ready != nil {
			n.readyCbs = append(n.readyCbs, ready)
		}
		m.mu.Unlock()
		return false
	}
	// Down → wake, unless the cap binds.
	n.prewarm = false
	if ready != nil {
		n.readyCbs = append(n.readyCbs, ready)
	}
	if max := m.maxPoweredLocked(); max > 0 && m.powered >= max {
		if !n.pendingWake {
			n.pendingWake = true
			n.wakeCause = cause
			m.waitq = append(m.waitq, n)
			m.m.capDeferred.Inc()
		}
		m.mu.Unlock()
		return false
	}
	m.startWakeLocked(n, cause)
	m.mu.Unlock()
	return false
}

// startWakeLocked transitions a Down node to Waking and actuates its power
// button. Caller holds m.mu; the node's PowerUp must not call back into
// the manager synchronously (both worker implementations complete the
// boot via a scheduled timer).
func (m *Manager) startWakeLocked(n *managed, cause string) {
	n.state = stateWaking
	n.pendingWake = false
	m.powered++
	m.m.wakes.Inc()
	m.m.poweredGauge(n.node.ID()).Set(1)
	n.node.PowerUp(cause, func() { m.wakeComplete(n) })
}

// wakeComplete fires on the cluster runtime when a node's boot latency has
// elapsed. If a drain started mid-boot the node is powered straight back
// down instead of being handed to the orchestrator — a wake must never
// resurrect a draining cluster's worker.
func (m *Manager) wakeComplete(n *managed) {
	m.mu.Lock()
	if m.draining {
		n.state = stateDown
		n.inUse = false
		n.prewarm = false
		n.readyCbs = nil
		m.powered--
		m.m.poweredGauge(n.node.ID()).Set(0)
		m.m.downs("drain").Inc()
		n.node.PowerDown("drain: wake aborted")
		m.mu.Unlock()
		return
	}
	n.state = stateUp
	n.upAt = m.rt.Now()
	cbs := n.readyCbs
	n.readyCbs = nil
	// A demand wake hands the node to the orchestrator; a predictive
	// pre-warm has no waiter, so the node comes up idle-warm with the
	// reactive idle countdown armed as a backstop should the forecast
	// stop trimming.
	n.inUse = !n.prewarm
	if n.prewarm {
		n.prewarm = false
		m.armIdleLocked(n)
	}
	m.mu.Unlock()
	// Callbacks run outside m.mu: they re-enter the orchestrator, whose
	// lock must always be taken before (never after) the manager's.
	for _, cb := range cbs {
		cb()
	}
}

// NoteIdle tells the manager the node has no work (its queue is empty and
// it is not executing). The idle power-down countdown starts: the node
// powers off after IdleTimeout, but never sooner than MinUp after its last
// boot. During drain the node powers off immediately.
func (m *Manager) NoteIdle(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[id]
	if !ok || n.state != stateUp {
		return
	}
	n.inUse = false
	if m.draining {
		m.powerDownLocked(n, "drain", "drain")
		return
	}
	m.armIdleLocked(n)
}

// armIdleLocked (re)starts a node's idle power-down countdown, honoring
// the MinUp hysteresis floor. Caller holds m.mu.
func (m *Manager) armIdleLocked(n *managed) {
	if n.cancelIdle != nil {
		n.cancelIdle()
	}
	delay := m.idleTimeout
	if floor := n.upAt + m.minUp - m.rt.Now(); floor > delay {
		delay = floor
	}
	n.cancelIdle = m.rt.After(delay, func() { m.idleExpired(n) })
}

// idleExpired fires the idle power-down timer. The node may have been
// re-granted since the timer was armed (the cancel raced the firing); the
// inUse re-check under the lock makes the race harmless either way.
func (m *Manager) idleExpired(n *managed) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n.cancelIdle = nil
	if n.state != stateUp || n.inUse {
		return
	}
	if m.target >= 0 && m.powered <= m.target {
		// The predictive warm floor holds the node: stay warm with no
		// timer. The next SetWarmTarget tick trims it if the forecast
		// drops, and any NoteIdle re-arms the countdown.
		return
	}
	m.powerDownLocked(n, "idle timeout", "idle")
}

// NoteFault tells the manager a job on the node just failed. A crashed
// worker cannot be trusted warm (the paper's clean-environment guarantee,
// Sec III-a), so the manager power-cycles it: powered off now, booted
// fresh by the next wake-on-demand.
func (m *Manager) NoteFault(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[id]
	if !ok || n.state != stateUp {
		return
	}
	n.inUse = false
	if n.cancelIdle != nil {
		n.cancelIdle()
		n.cancelIdle = nil
	}
	m.powerDownLocked(n, "fault: power-cycle", "fault")
}

// powerDownLocked powers an Up node off and starts the next cap-parked
// wake with the freed budget. Caller holds m.mu.
func (m *Manager) powerDownLocked(n *managed, cause, reason string) {
	if !n.node.PowerDown(cause) {
		// The node refused (mid-job under a stale grant); leave it Up and
		// let the next NoteIdle restart the countdown.
		return
	}
	n.state = stateDown
	m.powered--
	m.m.poweredGauge(n.node.ID()).Set(0)
	m.m.downs(reason).Inc()
	m.startNextWakeLocked()
}

// startNextWakeLocked pops cap-parked wakes while budget allows. Caller
// holds m.mu.
func (m *Manager) startNextWakeLocked() {
	if m.draining {
		return
	}
	max := m.maxPoweredLocked()
	for len(m.waitq) > 0 && (max == 0 || m.powered < max) {
		next := m.waitq[0]
		m.waitq = m.waitq[1:]
		if !next.pendingWake {
			continue // cancelled while parked
		}
		m.startWakeLocked(next, next.wakeCause)
	}
}

// Drain stops the manager for shutdown: cap-parked wakes are cancelled
// (their jobs are being abandoned by the orchestrator's drain), idle
// nodes power off immediately, and wakes that complete later are powered
// straight back down. In-flight jobs keep their nodes until NoteIdle.
func (m *Manager) Drain() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return
	}
	m.draining = true
	for _, n := range m.waitq {
		n.pendingWake = false
		n.readyCbs = nil
	}
	m.waitq = nil
	for _, n := range m.order {
		if n.cancelIdle != nil {
			n.cancelIdle()
			n.cancelIdle = nil
		}
		if n.state == stateUp && !n.inUse {
			m.powerDownLocked(n, "drain", "drain")
		}
	}
}

// IsUp reports whether the node is powered or booting — i.e. work queued
// on it will run without another wake.
func (m *Manager) IsUp(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[id]
	return ok && n.state != stateDown
}

// CanWake reports whether the power cap admits waking one more node.
func (m *Manager) CanWake() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	max := m.maxPoweredLocked()
	return max == 0 || m.powered < max
}

// StateName returns the node's power-plane state ("off", "waking", "on"),
// or "" for an unknown node.
func (m *Manager) StateName(id string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n, ok := m.nodes[id]; ok {
		return n.state.String()
	}
	return ""
}

// PoweredUp returns how many nodes are currently powered (Up or Waking).
func (m *Manager) PoweredUp() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.powered
}

// CapW returns the active power cap in watts (0 = uncapped).
func (m *Manager) CapW() power.Watts {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.capW
}

// SetCapW changes the power cap in watts at runtime (0 = remove the cap).
// Raising (or removing) the cap starts parked wakes immediately; lowering
// it never force-kills powered nodes — the cluster converges downward as
// nodes idle out.
func (m *Manager) SetCapW(w power.Watts) error {
	if w < 0 {
		return fmt.Errorf("powermgr: negative power cap %v W", float64(w))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.capW = w
	m.startNextWakeLocked()
	return nil
}

// SetWarmTarget sets the predictive warm floor: the manager immediately
// pre-wakes powered-down nodes (in registration order, within the power
// cap) until at least n are powered, and pre-sleeps surplus — idle
// nodes beyond the floor are powered off now instead of waiting out the
// idle timeout (tempered by the policy's PreSleepSlack headroom,
// PreSleepMax per-call trim bound, and PreSleepDebounce persistence
// gate). The floor also holds nodes warm when their idle timers fire.
// n < 0 disables predictive control and returns the manager to pure
// reactive behavior (already-warm nodes decay through the normal idle
// countdown). The forecast controller calls this every tick; it is a
// no-op while draining.
func (m *Manager) SetWarmTarget(n int) { m.setWarm(n, true) }

// SetWarmFloor is SetWarmTarget without the pre-sleep side: it raises,
// holds, and (n < 0) disengages the warm floor identically, but never
// powers nodes down. Surplus nodes still carrying their reactive idle
// countdown decay through it; nodes the floor already held at expiry
// stay warm until a later trimming tick (or disengage) reclaims them.
// The forecast controller calls it while predicted demand is flat or
// rising, reserving actual trimming for ticks whose forecast says a
// trough is ahead.
func (m *Manager) SetWarmFloor(n int) { m.setWarm(n, false) }

// setWarm implements SetWarmTarget/SetWarmFloor; trim gates the
// pre-sleep pass.
func (m *Manager) setWarm(n int, trim bool) {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return
	}
	m.target = n
	m.m.prewarmTarget.Set(float64(max(n, 0)))
	if n < 0 {
		// Disengage: nodes the floor was holding warm have no timer any
		// more (idleExpired consumed it without powering down), so
		// re-arm the reactive countdown on every idle node.
		m.trimStreak = 0
		for _, nd := range m.order {
			if nd.state == stateUp && !nd.inUse && nd.cancelIdle == nil {
				m.armIdleLocked(nd)
			}
		}
		m.mu.Unlock()
		return
	}
	// Pre-wake up to the floor, lowest index first, respecting the cap.
	maxP := m.maxPoweredLocked()
	for _, nd := range m.order {
		if m.powered >= n || (maxP > 0 && m.powered >= maxP) {
			break
		}
		if nd.state == stateDown && !nd.pendingWake {
			nd.prewarm = true
			m.startWakeLocked(nd, "prewarm")
		}
	}
	// Pre-sleep the surplus, highest index first: idle, past the MinUp
	// hysteresis, outside the PreSleepSlack band, and not holding the
	// cluster below the floor. PreSleepMax rate-limits the trim per call;
	// nodes it leaves powered keep their reactive idle countdown, so a
	// genuine trough still drains them.
	slack := m.preSleepSlack + int(math.Ceil(m.preSleepFrac*float64(n)))
	if m.powered > n+slack {
		m.trimStreak++
	} else {
		m.trimStreak = 0
	}
	if !trim || m.trimStreak <= m.preSleepDebounce {
		m.mu.Unlock()
		return
	}
	trimmed := 0
	for i := len(m.order) - 1; i >= 0 && m.powered > n+slack; i-- {
		nd := m.order[i]
		if nd.state != stateUp || nd.inUse || m.rt.Now() < nd.upAt+m.minUp {
			continue
		}
		if nd.cancelIdle != nil {
			nd.cancelIdle()
			nd.cancelIdle = nil
		}
		m.powerDownLocked(nd, "predictive trough", "predictive")
		if trimmed++; m.preSleepMax > 0 && trimmed >= m.preSleepMax {
			break
		}
	}
	m.mu.Unlock()
}

// WarmTarget returns the active predictive warm floor (−1 when
// predictive control is disabled).
func (m *Manager) WarmTarget() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.target
}

// NodeStatus is one node's row in a Status snapshot.
type NodeStatus struct {
	// ID names the node (matches its core.Worker id).
	ID string `json:"id"`
	// State is "off", "waking", or "on".
	State string `json:"state"`
	// InUse is true while the orchestrator holds the node (granted work
	// since the last idle notification).
	InUse bool `json:"in_use"`
	// PendingWake marks a wake parked behind the power cap.
	PendingWake bool `json:"pending_wake,omitempty"`
}

// Status is a point-in-time snapshot of the manager, as served by the
// gateway's /power endpoint.
type Status struct {
	// Powered counts nodes Up or Waking; Total is all managed nodes.
	Powered int `json:"powered"`
	// Total is the managed-node count.
	Total int `json:"total"`
	// CapW is the active cluster power budget in watts (0 = uncapped);
	// MaxPowered the node count it admits (0 = unlimited).
	CapW float64 `json:"cap_w"`
	// MaxPowered is the simultaneous-powered-node bound CapW implies.
	MaxPowered int `json:"max_powered"`
	// PendingWakes counts cap-parked wakes awaiting budget.
	PendingWakes int `json:"pending_wakes"`
	// IdleTimeoutMs/MinUpMs echo the policy in milliseconds.
	IdleTimeoutMs float64 `json:"idle_timeout_ms"`
	// MinUpMs is the policy's minimum-up hysteresis in milliseconds.
	MinUpMs float64 `json:"min_up_ms"`
	// Predictive is true while a forecast controller is steering the
	// manager through SetWarmTarget; WarmTarget is the active floor.
	Predictive bool `json:"predictive,omitempty"`
	// WarmTarget is the predictive warm floor in nodes (meaningful only
	// while Predictive).
	WarmTarget int `json:"warm_target,omitempty"`
	// Draining is true once Drain has been called: no new wakes.
	Draining bool `json:"draining,omitempty"`
	// Nodes lists every managed node in registration order.
	Nodes []NodeStatus `json:"nodes"`
}

// Snapshot returns the manager's current Status.
func (m *Manager) Snapshot() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Status{
		Powered:       m.powered,
		Total:         len(m.order),
		CapW:          float64(m.capW),
		MaxPowered:    m.maxPoweredLocked(),
		IdleTimeoutMs: float64(m.idleTimeout) / float64(time.Millisecond),
		MinUpMs:       float64(m.minUp) / float64(time.Millisecond),
		Predictive:    m.target >= 0,
		WarmTarget:    max(m.target, 0),
		Draining:      m.draining,
	}
	for _, n := range m.waitq {
		if n.pendingWake {
			st.PendingWakes++
		}
	}
	for _, n := range m.order {
		st.Nodes = append(st.Nodes, NodeStatus{
			ID:          n.node.ID(),
			State:       n.state.String(),
			InUse:       n.inUse,
			PendingWake: n.pendingWake,
		})
	}
	return st
}

// Occupancy returns how many powered nodes the orchestrator currently
// holds (granted work since their last idle notification) alongside the
// powered total. busy == powered > 0 means the warm pool is saturated —
// the forecast controller's trigger for spare-node headroom.
func (m *Manager) Occupancy() (busy, powered int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, n := range m.order {
		if n.state != stateDown && n.inUse {
			busy++
		}
	}
	return busy, m.powered
}

// PoweredIDs returns the ids of powered (Up or Waking) nodes, sorted —
// handy in tests and status displays.
func (m *Manager) PoweredIDs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for _, n := range m.order {
		if n.state != stateDown {
			out = append(out, n.node.ID())
		}
	}
	sort.Strings(out)
	return out
}
