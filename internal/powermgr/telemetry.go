package powermgr

import (
	"microfaas/internal/telemetry"
)

// Metric names the power manager owns (see DESIGN.md §7 for the catalogue
// and the label-cardinality rules).
const (
	// metricWorkersPowered is the cluster-wide powered-node count (Up or
	// Waking), evaluated at scrape time.
	metricWorkersPowered = "microfaas_workers_powered"
	// metricWorkerPowered is the per-worker 0/1 powered gauge faasctl top
	// renders its worker rows from.
	metricWorkerPowered = "microfaas_worker_powered"
	metricCapWatts      = "microfaas_power_cap_watts"
	metricWakes         = "microfaas_power_wakes_total"
	metricDowns         = "microfaas_power_downs_total"
	metricCapDeferred   = "microfaas_power_cap_deferred_total"
	// metricPrewarmTarget is the predictive warm floor last set through
	// SetWarmTarget, in nodes (0 while predictive control is off).
	metricPrewarmTarget = "microfaas_power_prewarm_target"
)

// mgrMetrics holds the manager's pre-created metric handles. Every handle
// no-ops on nil and a nil map lookup yields a nil handle, so the zero
// value is the disabled-instrumentation path.
type mgrMetrics struct {
	wakes         *telemetry.Counter
	capDeferred   *telemetry.Counter
	prewarmTarget *telemetry.Gauge
	downsBy       map[string]*telemetry.Counter // reason → counter
	powered       map[string]*telemetry.Gauge   // worker id → 0/1
}

// initTelemetry pre-creates the manager's metric families so every
// per-worker series is present (at zero) from the first scrape. The two
// cluster-level readings are func-backed and evaluated at scrape time.
func (m *Manager) initTelemetry(tel *telemetry.Telemetry) {
	if tel == nil {
		return
	}
	reg := tel.Registry()
	reg.GaugeFunc(metricWorkersPowered,
		"Workers currently powered (booting or up); the rest draw only off-state power.",
		func() float64 { return float64(m.PoweredUp()) })
	reg.GaugeFunc(metricCapWatts,
		"Active cluster power cap in watts (0 = uncapped).",
		func() float64 { return float64(m.CapW()) })
	m.m = mgrMetrics{
		wakes: reg.Counter(metricWakes,
			"Wake-on-demand power-ups issued by the power manager."),
		capDeferred: reg.Counter(metricCapDeferred,
			"Wakes parked in the FIFO because the power cap was binding."),
		prewarmTarget: reg.Gauge(metricPrewarmTarget,
			"Predictive warm floor in nodes last set by the forecast controller (0 = predictive control off)."),
		downsBy: make(map[string]*telemetry.Counter, 4),
		powered: make(map[string]*telemetry.Gauge, len(m.order)),
	}
	for _, reason := range []string{"idle", "fault", "drain", "predictive"} {
		m.m.downsBy[reason] = reg.Counter(metricDowns,
			"Power-downs issued by the power manager, by reason.", "reason", reason)
	}
	for _, n := range m.order {
		m.m.powered[n.node.ID()] = reg.Gauge(metricWorkerPowered,
			"1 while the worker is powered (booting or up), 0 while powered off.",
			"worker", n.node.ID())
	}
}

// poweredGauge returns the per-worker powered gauge (nil when telemetry is
// disabled; the handle no-ops).
func (m *mgrMetrics) poweredGauge(id string) *telemetry.Gauge { return m.powered[id] }

// downs returns the power-down counter for a reason (nil-safe).
func (m *mgrMetrics) downs(reason string) *telemetry.Counter { return m.downsBy[reason] }
