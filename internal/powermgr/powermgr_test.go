// Tests drive the Manager over real SimWorkers on the discrete-event
// engine, so every scenario — including the same-instant races — runs the
// exact node and GPIO code the managed sim cluster uses. (The external
// test package avoids the core→powermgr import cycle.)
package powermgr_test

import (
	"testing"
	"time"

	"microfaas/internal/core"
	"microfaas/internal/gpio"
	"microfaas/internal/model"
	"microfaas/internal/node"
	"microfaas/internal/power"
	"microfaas/internal/powermgr"
	"microfaas/internal/sim"
)

const bootTime = time.Second

// rig is a manager over n managed SimWorkers with a 1-second boot and no
// jitter, so event times are exact.
type rig struct {
	engine  *sim.Engine
	gpio    *gpio.Controller
	mgr     *powermgr.Manager
	workers []*node.SimWorker
}

func newRig(t *testing.T, n int, pol powermgr.Policy) *rig {
	t.Helper()
	r := &rig{engine: sim.NewEngine(1), gpio: gpio.NewController()}
	meter := power.NewMeter()
	nodes := make([]powermgr.Node, 0, n)
	for i := 0; i < n; i++ {
		w, err := node.NewSimWorker(node.SimWorkerConfig{
			ID:       string(rune('a' + i)),
			Platform: model.ARM,
			Engine:   r.engine,
			Meter:    meter,
			GPIO:     r.gpio,
			BootTime: bootTime,
			Managed:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.workers = append(r.workers, w)
		nodes = append(nodes, w)
	}
	mgr, err := powermgr.New(powermgr.Config{
		Runtime: core.SimRuntime{Engine: r.engine},
		Nodes:   nodes,
		Policy:  pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.mgr = mgr
	return r
}

// transitions renders a node's audit log as "from>to" steps.
func (r *rig) transitions(id string) []string {
	var out []string
	for _, e := range r.gpio.EventsFor(id) {
		out = append(out, e.From.String()+">"+e.To.String())
	}
	return out
}

func sameSeq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestWakeOnDemand(t *testing.T) {
	r := newRig(t, 1, powermgr.Policy{IdleTimeout: 10 * time.Second})
	ready := false
	if r.mgr.RequestUp("a", "test wake", func() { ready = true }) {
		t.Fatal("RequestUp on a powered-down node returned true")
	}
	if got := r.mgr.StateName("a"); got != "waking" {
		t.Fatalf("state = %q, want waking", got)
	}
	r.engine.Run(bootTime)
	if !ready {
		t.Fatal("ready callback did not fire after the boot latency")
	}
	if got := r.mgr.StateName("a"); got != "on" {
		t.Fatalf("state = %q, want on", got)
	}
	if !r.mgr.RequestUp("a", "again", nil) {
		t.Fatal("RequestUp on an up node returned false")
	}
	if got := r.mgr.PoweredUp(); got != 1 {
		t.Fatalf("PoweredUp = %d, want 1", got)
	}
}

// TestIdlePowerDownWakeRace is the same-instant race table test: the idle
// power-down timer and a new wake request land on the same virtual
// instant, in both orders. Either way the GPIO audit log must stay
// monotone and the node must end up powered: when the timer fires first
// the log shows a power-cycle (on>off then off>booting at the same
// timestamp); when the wake lands first it cancels the timer and the node
// never blips off.
func TestIdlePowerDownWakeRace(t *testing.T) {
	const idle = 4 * time.Second
	cases := []struct {
		name       string
		timerFirst bool // arm the idle timer before scheduling the wake
		want       []string
	}{
		{
			name:       "power-down-fires-first",
			timerFirst: true,
			want:       []string{"off>booting", "booting>idle", "idle>off", "off>booting", "booting>idle"},
		},
		{
			name:       "wake-cancels-power-down",
			timerFirst: false,
			want:       []string{"off>booting", "booting>idle"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t, 1, powermgr.Policy{IdleTimeout: idle, MinUp: time.Millisecond})
			r.mgr.RequestUp("a", "first wake", nil)
			r.engine.Run(bootTime) // node is up at t=bootTime
			raceAt := bootTime + idle
			wake := func() { r.mgr.RequestUp("a", "racing wake", nil) }
			if tc.timerFirst {
				// NoteIdle arms the timer for raceAt; the wake event is
				// scheduled after it, so with equal timestamps the engine
				// fires the power-down first.
				r.mgr.NoteIdle("a")
				r.engine.Schedule(raceAt-r.engine.Now(), wake)
			} else {
				r.engine.Schedule(raceAt-r.engine.Now(), wake)
				r.mgr.NoteIdle("a")
			}
			r.engine.RunAll()
			if got := r.mgr.StateName("a"); got != "on" {
				t.Fatalf("state after race = %q, want on", got)
			}
			if got := r.transitions("a"); !sameSeq(got, tc.want) {
				t.Fatalf("audit log = %v, want %v", got, tc.want)
			}
			// The audit log must be monotone even with two transitions on
			// the same instant.
			events := r.gpio.Events()
			for i := 1; i < len(events); i++ {
				if events[i].At < events[i-1].At {
					t.Fatalf("audit log went backwards: %v after %v", events[i], events[i-1])
				}
			}
		})
	}
}

// TestWakeMidDrainDoesNotResurrect is the drain regression test: a wake
// in flight when Drain is called must power straight back down when the
// boot completes — never hand the node to the orchestrator.
func TestWakeMidDrainDoesNotResurrect(t *testing.T) {
	r := newRig(t, 1, powermgr.Policy{IdleTimeout: 10 * time.Second})
	ready := false
	r.mgr.RequestUp("a", "doomed wake", func() { ready = true })
	r.engine.Run(bootTime / 2)
	r.mgr.Drain()
	r.engine.RunAll()
	if ready {
		t.Fatal("ready callback fired for a wake that completed mid-drain")
	}
	if got := r.mgr.StateName("a"); got != "off" {
		t.Fatalf("state after drain = %q, want off", got)
	}
	if got := r.mgr.PoweredUp(); got != 0 {
		t.Fatalf("PoweredUp = %d, want 0", got)
	}
	want := []string{"off>booting", "booting>idle", "idle>off"}
	if got := r.transitions("a"); !sameSeq(got, want) {
		t.Fatalf("audit log = %v, want %v", got, want)
	}
	// And a fresh request during drain must refuse outright.
	if r.mgr.RequestUp("a", "post-drain", func() { t.Fatal("ready fired during drain") }) {
		t.Fatal("RequestUp succeeded on a draining manager")
	}
	r.engine.RunAll()
}

func TestPowerCapFIFO(t *testing.T) {
	// Cap admits two nodes at 1 W each; the third and fourth wakes park
	// and must start in FIFO order as capacity frees.
	r := newRig(t, 4, powermgr.Policy{IdleTimeout: time.Hour, CapW: 2, NodeW: 1})
	order := make([]string, 0, 4)
	for _, id := range []string{"a", "b", "c", "d"} {
		id := id
		r.mgr.RequestUp(id, "cap test", func() { order = append(order, id) })
	}
	if !r.mgr.CanWake() {
		// expected: cap is saturated with a and b waking
	} else {
		t.Fatal("CanWake true with the cap saturated")
	}
	r.engine.RunAll()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("ready order under cap = %v, want [a b]", order)
	}
	if got := r.mgr.Snapshot().PendingWakes; got != 2 {
		t.Fatalf("PendingWakes = %d, want 2", got)
	}
	// Fault a powered node: its budget frees and c (first in) wakes.
	r.mgr.NoteFault("a")
	r.engine.RunAll()
	if len(order) != 3 || order[2] != "c" {
		t.Fatalf("ready order after freed budget = %v, want [a b c]", order)
	}
	// Raising the cap starts the rest.
	if err := r.mgr.SetCapW(4); err != nil {
		t.Fatal(err)
	}
	r.engine.RunAll()
	if len(order) != 4 || order[3] != "d" {
		t.Fatalf("ready order after raising cap = %v, want [a b c d]", order)
	}
}

func TestMinUpHysteresis(t *testing.T) {
	const minUp = 10 * time.Second
	r := newRig(t, 1, powermgr.Policy{IdleTimeout: time.Second, MinUp: minUp})
	r.mgr.RequestUp("a", "wake", nil)
	r.engine.Run(bootTime)
	r.mgr.NoteIdle("a") // idle immediately after boot
	r.engine.RunAll()
	evs := r.gpio.EventsFor("a")
	last := evs[len(evs)-1]
	if last.To != power.Off {
		t.Fatalf("node did not power down: %v", last)
	}
	// The 1 s idle timeout is floored by MinUp: off at bootTime+minUp.
	if want := bootTime + minUp; last.At != want {
		t.Fatalf("powered down at %v, want %v (MinUp hysteresis)", last.At, want)
	}
}

func TestSetCapWRejectsNegative(t *testing.T) {
	r := newRig(t, 1, powermgr.Policy{})
	if err := r.mgr.SetCapW(-1); err == nil {
		t.Fatal("SetCapW(-1) succeeded")
	}
}

func TestNoteFaultPowerCycles(t *testing.T) {
	r := newRig(t, 1, powermgr.Policy{IdleTimeout: time.Hour})
	r.mgr.RequestUp("a", "wake", nil)
	r.engine.RunAll()
	r.mgr.NoteFault("a")
	if got := r.mgr.StateName("a"); got != "off" {
		t.Fatalf("state after fault = %q, want off (power-cycled)", got)
	}
	// The next request boots it fresh.
	if r.mgr.RequestUp("a", "rewake", nil) {
		t.Fatal("RequestUp returned true on a power-cycled node")
	}
	r.engine.RunAll()
	if got := r.mgr.StateName("a"); got != "on" {
		t.Fatalf("state after rewake = %q, want on", got)
	}
}

// TestSetWarmTargetStateMachine tables the predictive-mode transitions:
// pre-wake up to the floor, demand conversion mid-boot, floor holding
// idle timers, pre-sleep of surplus, MinUp protecting fresh nodes, and
// the return to reactive decay when the controller disengages.
func TestSetWarmTargetStateMachine(t *testing.T) {
	const (
		idle  = 4 * time.Second
		minUp = 2 * time.Second
	)
	type step struct {
		name string
		run  func(r *rig)
		// want maps node id → expected StateName after the step.
		want map[string]string
	}
	steps := []step{
		{
			name: "pre-wake to floor 2",
			run: func(r *rig) {
				r.mgr.SetWarmTarget(2)
				r.engine.RunAll() // boots complete
			},
			want: map[string]string{"a": "on", "b": "on", "c": "off"},
		},
		{
			name: "floor holds idle timers",
			run: func(r *rig) {
				// Pre-warmed nodes carry a reactive idle countdown as a
				// backstop, but the floor keeps them warm when it fires.
				r.engine.RunAll()
			},
			want: map[string]string{"a": "on", "b": "on", "c": "off"},
		},
		{
			name: "raise floor to 3",
			run: func(r *rig) {
				r.mgr.SetWarmTarget(3)
				r.engine.RunAll()
			},
			want: map[string]string{"a": "on", "b": "on", "c": "on"},
		},
		{
			name: "demand grant from warm pool is instant",
			run: func(r *rig) {
				if !r.mgr.RequestUp("a", "demand", nil) {
					t.Fatal("RequestUp on a pre-warmed node returned false, want instant grant")
				}
			},
			want: map[string]string{"a": "on", "b": "on", "c": "on"},
		},
		{
			name: "pre-sleep surplus keeps in-use node",
			run: func(r *rig) {
				// Floor drops to 1 while a is granted: b and c (idle,
				// past MinUp) pre-sleep immediately; a stays.
				r.mgr.SetWarmTarget(1)
			},
			want: map[string]string{"a": "on", "b": "off", "c": "off"},
		},
		{
			name: "MinUp protects a fresh pre-warm from the trim",
			run: func(r *rig) {
				r.mgr.SetWarmTarget(2) // re-wakes b
				// Advance just past b's boot; MinUp is not yet met.
				r.engine.Run(r.engine.Now() + bootTime)
				r.mgr.SetWarmTarget(0) // trough: trim everything idle
			},
			// b survives the trim (fresh); a survives (in use).
			want: map[string]string{"a": "on", "b": "on", "c": "off"},
		},
		{
			name: "next tick trims once MinUp elapses",
			run: func(r *rig) {
				r.engine.Run(r.engine.Now() + minUp)
				r.mgr.SetWarmTarget(0)
			},
			want: map[string]string{"a": "on", "b": "off", "c": "off"},
		},
		{
			name: "disable returns to reactive decay",
			run: func(r *rig) {
				r.mgr.SetWarmTarget(-1)
				r.mgr.NoteIdle("a") // orchestrator releases a
				r.engine.RunAll()   // idle timeout fires, nothing holds it
			},
			want: map[string]string{"a": "off", "b": "off", "c": "off"},
		},
	}
	r := newRig(t, 3, powermgr.Policy{IdleTimeout: idle, MinUp: minUp})
	for _, st := range steps {
		st.run(r)
		for id, want := range st.want {
			if got := r.mgr.StateName(id); got != want {
				t.Fatalf("%s: node %s state = %q, want %q", st.name, id, got, want)
			}
		}
	}
	if s := r.mgr.Snapshot(); s.Predictive || s.WarmTarget != 0 {
		t.Fatalf("after disable: snapshot predictive=%v target=%d, want off/0", s.Predictive, s.WarmTarget)
	}
}

// TestSetWarmFloorNeverTrims pins the floor-only call: lowering the
// floor pre-sleeps nothing. Nodes the floor held at their last idle
// expiry stay warm (their countdown was consumed), while any node the
// orchestrator releases afterwards decays through the normal reactive
// timeout.
func TestSetWarmFloorNeverTrims(t *testing.T) {
	r := newRig(t, 3, powermgr.Policy{IdleTimeout: 4 * time.Second})
	r.mgr.SetWarmTarget(3)
	r.engine.RunAll() // boots complete; idle backstops fire and are held
	if got := r.mgr.PoweredUp(); got != 3 {
		t.Fatalf("powered = %d, want 3 pre-warmed", got)
	}
	r.mgr.SetWarmFloor(1)
	r.engine.RunAll()
	if got := r.mgr.PoweredUp(); got != 3 {
		t.Fatalf("powered after SetWarmFloor(1) = %d, want 3 (floor never trims)", got)
	}
	// A demand grant + release re-arms one node's countdown; with the
	// cluster above the floor, that node now decays reactively.
	if !r.mgr.RequestUp("c", "demand", nil) {
		t.Fatal("RequestUp on a warm node returned false")
	}
	r.mgr.NoteIdle("c")
	r.engine.RunAll()
	if got := r.mgr.PoweredUp(); got != 2 {
		t.Fatalf("powered after release+timeout = %d, want 2", got)
	}
	if got := r.mgr.StateName("c"); got != "off" {
		t.Fatalf("released node state = %q, want off", got)
	}
}

// TestPreSleepSlackAndDebounce tables the trim dampers: surplus within
// the slack band is never trimmed, a surplus beyond it must persist for
// more than PreSleepDebounce consecutive calls, and PreSleepMax bounds
// each call's trims.
func TestPreSleepSlackAndDebounce(t *testing.T) {
	r := newRig(t, 4, powermgr.Policy{
		IdleTimeout:      time.Hour, // keep reactive decay out of the way
		PreSleepSlack:    1,
		PreSleepMax:      1,
		PreSleepDebounce: 1,
	})
	r.mgr.SetWarmTarget(4)
	r.engine.RunAll()
	steps := []struct {
		name string
		want int // powered after one more SetWarmTarget(1)
	}{
		{"first surplus call only arms the debounce", 4},
		{"second call trims, capped at PreSleepMax=1", 3},
		{"third call trims the next one", 2},
		{"at target+slack the trim disengages", 2},
	}
	for _, st := range steps {
		r.mgr.SetWarmTarget(1)
		r.engine.RunAll()
		if got := r.mgr.PoweredUp(); got != st.want {
			t.Fatalf("%s: powered = %d, want %d", st.name, got, st.want)
		}
	}
}

// TestPreSleepSlackFrac pins the target-scaled slack: ceil(frac×target)
// joins the flat headroom before any trim fires.
func TestPreSleepSlackFrac(t *testing.T) {
	r := newRig(t, 6, powermgr.Policy{
		IdleTimeout:       time.Hour,
		PreSleepSlackFrac: 0.5,
	})
	r.mgr.SetWarmTarget(6)
	r.engine.RunAll()
	// slack = ceil(0.5×2) = 1 → trim down to target+1 = 3 in one call
	// (PreSleepMax 0 = unbounded, PreSleepDebounce 0 = immediate).
	r.mgr.SetWarmTarget(2)
	if got := r.mgr.PoweredUp(); got != 3 {
		t.Fatalf("powered = %d, want 3 (target 2 + ceil(0.5×2) slack)", got)
	}
}

// TestOccupancy pins the saturation signal: granted nodes count as
// busy until the orchestrator's idle note releases them.
func TestOccupancy(t *testing.T) {
	r := newRig(t, 2, powermgr.Policy{IdleTimeout: time.Hour})
	r.mgr.SetWarmTarget(2)
	r.engine.RunAll()
	if busy, powered := r.mgr.Occupancy(); busy != 0 || powered != 2 {
		t.Fatalf("idle occupancy = %d/%d, want 0/2", busy, powered)
	}
	r.mgr.RequestUp("a", "demand", nil)
	if busy, powered := r.mgr.Occupancy(); busy != 1 || powered != 2 {
		t.Fatalf("granted occupancy = %d/%d, want 1/2", busy, powered)
	}
	r.mgr.NoteIdle("a")
	if busy, _ := r.mgr.Occupancy(); busy != 0 {
		t.Fatalf("busy after NoteIdle = %d, want 0", busy)
	}
}

// TestSetWarmTargetRespectsCap pins the cap interaction: the floor never
// powers past CapW/NodeW.
func TestSetWarmTargetRespectsCap(t *testing.T) {
	nodeW := power.DefaultSBCModel().BusyW
	r := newRig(t, 4, powermgr.Policy{IdleTimeout: time.Hour, CapW: 2 * nodeW, NodeW: nodeW})
	r.mgr.SetWarmTarget(4)
	r.engine.RunAll()
	if got := r.mgr.PoweredUp(); got != 2 {
		t.Fatalf("powered = %d, want 2 (cap binds the pre-wake)", got)
	}
}
