// Package replay provides trace-driven workload replay: a Schedule is a
// time-ordered list of invocations (loadable from CSV, or generated
// synthetically), and Run drives it into a simulated or live cluster.
//
// The paper evaluates under saturation and a fixed arrival process; replay
// extends the harness to production-shaped load — most importantly the
// diurnal daily cycle, where MicroFaaS's power-down-when-idle design pays
// off hardest (Sec III-b/III-c). Generators are deterministic per seed.
package replay

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Entry is one scheduled invocation.
type Entry struct {
	// At is the offset from replay start.
	At time.Duration
	// Function is the workload function name.
	Function string
}

// Schedule is a time-ordered invocation list.
type Schedule []Entry

// Validate checks ordering and well-formedness.
func (s Schedule) Validate() error {
	for i, e := range s {
		if e.At < 0 {
			return fmt.Errorf("replay: entry %d at negative offset %v", i, e.At)
		}
		if e.Function == "" {
			return fmt.Errorf("replay: entry %d has no function", i)
		}
		if i > 0 && e.At < s[i-1].At {
			return fmt.Errorf("replay: entry %d (%v) precedes entry %d (%v)", i, e.At, i-1, s[i-1].At)
		}
	}
	return nil
}

// Duration returns the offset of the last entry (0 for an empty schedule).
func (s Schedule) Duration() time.Duration {
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1].At
}

// Rate returns the mean arrival rate in invocations per minute.
func (s Schedule) Rate() float64 {
	d := s.Duration()
	if d == 0 {
		return 0
	}
	return float64(len(s)) / d.Minutes()
}

// WriteCSV emits "at_ms,function" rows.
func (s Schedule) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "at_ms,function"); err != nil {
		return err
	}
	for _, e := range s {
		if _, err := fmt.Fprintf(w, "%.3f,%s\n", float64(e.At)/float64(time.Millisecond), e.Function); err != nil {
			return err
		}
	}
	return nil
}

// ReadCSV parses a schedule written by WriteCSV (or by hand). The header
// row is required; entries are sorted by offset on load.
func ReadCSV(r io.Reader) (Schedule, error) {
	scanner := bufio.NewScanner(r)
	if !scanner.Scan() {
		return nil, fmt.Errorf("replay: empty schedule file")
	}
	if got := strings.TrimSpace(scanner.Text()); got != "at_ms,function" {
		return nil, fmt.Errorf("replay: bad header %q", got)
	}
	var out Schedule
	line := 1
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" {
			continue
		}
		atStr, fn, ok := strings.Cut(text, ",")
		if !ok || fn == "" {
			return nil, fmt.Errorf("replay: line %d: want at_ms,function", line)
		}
		ms, err := strconv.ParseFloat(atStr, 64)
		if err != nil || ms < 0 {
			return nil, fmt.Errorf("replay: line %d: bad offset %q", line, atStr)
		}
		out = append(out, Entry{
			At:       time.Duration(ms * float64(time.Millisecond)),
			Function: strings.TrimSpace(fn),
		})
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("replay: read: %w", err)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out, nil
}

// DiurnalConfig shapes a synthetic daily cycle.
type DiurnalConfig struct {
	// Duration of the trace (default 24 h).
	Duration time.Duration
	// BaseRatePerMin is the overnight trough; PeakRatePerMin the afternoon
	// peak. Rate follows 1 - cos(2πt/T) scaled between them, troughing at
	// t=0 (midnight) and peaking at t=T/2 (noon).
	BaseRatePerMin, PeakRatePerMin float64
	// Functions to draw from, uniformly (required non-empty).
	Functions []string
	Seed      int64
}

// Diurnal generates a non-homogeneous Poisson arrival schedule via Lewis
// thinning, deterministic per seed.
func Diurnal(cfg DiurnalConfig) (Schedule, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 24 * time.Hour
	}
	if len(cfg.Functions) == 0 {
		return nil, fmt.Errorf("replay: diurnal trace needs functions")
	}
	if cfg.BaseRatePerMin < 0 || cfg.PeakRatePerMin <= 0 || cfg.PeakRatePerMin < cfg.BaseRatePerMin {
		return nil, fmt.Errorf("replay: need 0 <= base (%v) <= peak (%v), peak > 0",
			cfg.BaseRatePerMin, cfg.PeakRatePerMin)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rate := func(t time.Duration) float64 { // per minute
		phase := 2 * math.Pi * float64(t) / float64(cfg.Duration)
		return cfg.BaseRatePerMin + (cfg.PeakRatePerMin-cfg.BaseRatePerMin)*(1-math.Cos(phase))/2
	}
	maxRate := cfg.PeakRatePerMin // per minute
	var out Schedule
	t := time.Duration(0)
	for {
		// Exponential gap at the max rate, then thin.
		gapMin := rng.ExpFloat64() / maxRate
		t += time.Duration(gapMin * float64(time.Minute))
		if t >= cfg.Duration {
			break
		}
		if rng.Float64() <= rate(t)/maxRate {
			out = append(out, Entry{At: t, Function: cfg.Functions[rng.Intn(len(cfg.Functions))]})
		}
	}
	return out, nil
}

// Constant generates a homogeneous Poisson schedule at ratePerMin.
func Constant(duration time.Duration, ratePerMin float64, functions []string, seed int64) (Schedule, error) {
	if duration <= 0 || ratePerMin <= 0 {
		return nil, fmt.Errorf("replay: need positive duration and rate")
	}
	if len(functions) == 0 {
		return nil, fmt.Errorf("replay: constant trace needs functions")
	}
	rng := rand.New(rand.NewSource(seed))
	var out Schedule
	t := time.Duration(0)
	for {
		gapMin := rng.ExpFloat64() / ratePerMin
		t += time.Duration(gapMin * float64(time.Minute))
		if t >= duration {
			return out, nil
		}
		out = append(out, Entry{At: t, Function: functions[rng.Intn(len(functions))]})
	}
}

// Submitter is the slice of an orchestrator replay needs (satisfied by
// core.Orchestrator).
type Submitter interface {
	Submit(function string, args []byte) int64
}

// Scheduler abstracts event scheduling (core.Runtime satisfies it).
type Scheduler interface {
	After(d time.Duration, fn func()) (cancel func())
	Now() time.Duration
}

// Feed schedules every entry onto the runtime, submitting to the
// orchestrator at its offset (relative to Now at call time). It returns
// the number of scheduled entries; in sim mode, drive the engine to
// execute them.
func Feed(rt Scheduler, orch Submitter, sched Schedule) (int, error) {
	if err := sched.Validate(); err != nil {
		return 0, err
	}
	for _, e := range sched {
		e := e
		rt.After(e.At, func() { orch.Submit(e.Function, nil) })
	}
	return len(sched), nil
}
