package replay

import (
	"math"
	"strings"
	"testing"
	"time"

	"microfaas/internal/cluster"
	"microfaas/internal/core"
)

func TestValidate(t *testing.T) {
	good := Schedule{{At: 0, Function: "A"}, {At: time.Second, Function: "B"}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Schedule{
		{{At: -time.Second, Function: "A"}},
		{{At: 0, Function: ""}},
		{{At: time.Second, Function: "A"}, {At: 0, Function: "B"}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("bad schedule %d accepted", i)
		}
	}
}

func TestScheduleAggregates(t *testing.T) {
	s := Schedule{{At: 0, Function: "A"}, {At: 30 * time.Second, Function: "B"}, {At: time.Minute, Function: "C"}}
	if s.Duration() != time.Minute {
		t.Fatalf("Duration = %v", s.Duration())
	}
	if got := s.Rate(); got != 3 {
		t.Fatalf("Rate = %v func/min, want 3", got)
	}
	if (Schedule{}).Duration() != 0 || (Schedule{}).Rate() != 0 {
		t.Fatal("empty schedule aggregates wrong")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := Schedule{
		{At: 0, Function: "CascSHA"},
		{At: 1500 * time.Millisecond, Function: "RedisInsert"},
		{At: 2 * time.Second, Function: "COSGet"},
	}
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(s) {
		t.Fatalf("round trip %d entries, want %d", len(got), len(s))
	}
	for i := range s {
		if got[i].Function != s[i].Function || got[i].At != s[i].At {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], s[i])
		}
	}
}

func TestReadCSVSortsAndRejectsGarbage(t *testing.T) {
	got, err := ReadCSV(strings.NewReader("at_ms,function\n2000,B\n1000,A\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Function != "A" || got[1].Function != "B" {
		t.Fatalf("not sorted: %+v", got)
	}
	for _, bad := range []string{
		"",
		"wrong,header\n1,A\n",
		"at_ms,function\nnot-a-number,A\n",
		"at_ms,function\n-5,A\n",
		"at_ms,function\n100\n",
	} {
		if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestDiurnalShape(t *testing.T) {
	sched, err := Diurnal(DiurnalConfig{
		Duration:       24 * time.Hour,
		BaseRatePerMin: 1,
		PeakRatePerMin: 20,
		Functions:      []string{"A", "B"},
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	// Expected count: mean rate = (base+peak)/2 = 10.5/min over 1440 min.
	want := 10.5 * 1440
	if got := float64(len(sched)); math.Abs(got-want)/want > 0.10 {
		t.Fatalf("%v arrivals, want ≈%v", got, want)
	}
	// Noon (hours 10-14) must be far busier than midnight (hours 0-2 and 22-24).
	count := func(from, to time.Duration) int {
		n := 0
		for _, e := range sched {
			if e.At >= from && e.At < to {
				n++
			}
		}
		return n
	}
	noon := count(10*time.Hour, 14*time.Hour)
	night := count(0, 2*time.Hour) + count(22*time.Hour, 24*time.Hour)
	if noon < night*3 {
		t.Fatalf("noon %d vs night %d arrivals — diurnal shape missing", noon, night)
	}
}

func TestDiurnalDeterministicPerSeed(t *testing.T) {
	cfg := DiurnalConfig{BaseRatePerMin: 1, PeakRatePerMin: 5, Functions: []string{"A"}, Seed: 7}
	a, err := Diurnal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Diurnal(cfg)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestDiurnalValidation(t *testing.T) {
	if _, err := Diurnal(DiurnalConfig{PeakRatePerMin: 5}); err == nil {
		t.Fatal("missing functions accepted")
	}
	if _, err := Diurnal(DiurnalConfig{BaseRatePerMin: 10, PeakRatePerMin: 5, Functions: []string{"A"}}); err == nil {
		t.Fatal("base > peak accepted")
	}
	if _, err := Diurnal(DiurnalConfig{Functions: []string{"A"}}); err == nil {
		t.Fatal("zero peak accepted")
	}
}

func TestConstantRate(t *testing.T) {
	sched, err := Constant(time.Hour, 30, []string{"A", "B", "C"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := 30.0 * 60
	if got := float64(len(sched)); math.Abs(got-want)/want > 0.15 {
		t.Fatalf("%v arrivals in an hour at 30/min, want ≈%v", got, want)
	}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Constant(0, 30, []string{"A"}, 1); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := Constant(time.Hour, 30, nil, 1); err == nil {
		t.Fatal("no functions accepted")
	}
}

func TestFeedIntoSimCluster(t *testing.T) {
	s, err := cluster.NewMicroFaaSSim(4, cluster.SimConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sched := Schedule{
		{At: 0, Function: "FloatOps"},
		{At: 2 * time.Second, Function: "RegExMatch"},
		{At: 5 * time.Second, Function: "CascSHA"},
	}
	n, err := Feed(core.SimRuntime{Engine: s.Engine}, s.Orch, sched)
	if err != nil || n != 3 {
		t.Fatalf("Feed = %d, %v", n, err)
	}
	s.Engine.RunAll()
	recs := s.Orch.Collector().Records()
	if len(recs) != 3 {
		t.Fatalf("completed %d of 3", len(recs))
	}
	// Submission timestamps must match the schedule offsets.
	subs := map[string]time.Duration{}
	for _, r := range recs {
		subs[r.Function] = r.Submitted
	}
	if subs["FloatOps"] != 0 || subs["RegExMatch"] != 2*time.Second || subs["CascSHA"] != 5*time.Second {
		t.Fatalf("submission times = %v", subs)
	}
}

func TestFeedRejectsInvalidSchedule(t *testing.T) {
	s, err := cluster.NewMicroFaaSSim(1, cluster.SimConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Feed(core.SimRuntime{Engine: s.Engine}, s.Orch, Schedule{{At: -1, Function: "X"}}); err == nil {
		t.Fatal("invalid schedule fed")
	}
}
