package tco

import (
	"math"
	"testing"
	"testing/quick"
)

// near asserts |got-want| <= 1 (Table II rounds to whole dollars).
func near(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1 {
		t.Fatalf("%s = $%.2f, want $%.0f (±$1)", what, got, want)
	}
}

func TestTableIIExactReproduction(t *testing.T) {
	rows, err := TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d scenarios, want 2", len(rows))
	}
	ideal, realistic := rows[0], rows[1]

	// Ideal column (100% Util., 100% OR).
	near(t, "ideal conventional compute", ideal.Conventional.Compute, 82451)
	near(t, "ideal conventional network", ideal.Conventional.Network, 574)
	near(t, "ideal conventional energy", ideal.Conventional.Energy, 41676)
	near(t, "ideal conventional total", ideal.Conventional.Total(), 124701)
	near(t, "ideal microfaas compute", ideal.MicroFaaS.Compute, 51923)
	near(t, "ideal microfaas network", ideal.MicroFaaS.Network, 12280)
	near(t, "ideal microfaas energy", ideal.MicroFaaS.Energy, 17884)
	near(t, "ideal microfaas total", ideal.MicroFaaS.Total(), 82087)

	// Realistic column (50% Util., 95% OR).
	near(t, "realistic conventional compute", realistic.Conventional.Compute, 86791)
	near(t, "realistic conventional network", realistic.Conventional.Network, 574)
	near(t, "realistic conventional energy", realistic.Conventional.Energy, 29242)
	near(t, "realistic conventional total", realistic.Conventional.Total(), 116607)
	near(t, "realistic microfaas compute", realistic.MicroFaaS.Compute, 54655)
	near(t, "realistic microfaas network", realistic.MicroFaaS.Network, 12280)
	near(t, "realistic microfaas energy", realistic.MicroFaaS.Energy, 11778)
	near(t, "realistic microfaas total", realistic.MicroFaaS.Total(), 78713)
}

func TestHeadlineSavingsRange(t *testing.T) {
	// Sec V: "the MicroFaaS cluster is 32.5–34.2% less expensive".
	rows, err := TableII()
	if err != nil {
		t.Fatal(err)
	}
	ideal, realistic := rows[0].Savings()*100, rows[1].Savings()*100
	if math.Abs(ideal-34.2) > 0.1 {
		t.Fatalf("ideal savings = %.2f%%, want 34.2%%", ideal)
	}
	if math.Abs(realistic-32.5) > 0.1 {
		t.Fatalf("realistic savings = %.2f%%, want 32.5%%", realistic)
	}
}

func TestSwitchCounts(t *testing.T) {
	a := PaperAssumptions()
	// Sec V: 41 servers need 1 ToR switch; 989 SBCs need 21.
	if got := Switches(PaperConventionalNodes, a); got != 1 {
		t.Fatalf("conventional switches = %d, want 1", got)
	}
	if got := Switches(PaperMicroFaaSNodes, a); got != 21 {
		t.Fatalf("microfaas switches = %d, want 21", got)
	}
	if got := Switches(48, a); got != 1 {
		t.Fatalf("48 nodes = %d switches", got)
	}
	if got := Switches(49, a); got != 2 {
		t.Fatalf("49 nodes = %d switches", got)
	}
}

func TestCableLengthMatchesPaperAside(t *testing.T) {
	// Sec V: "1.8 kilometers (1.1 miles) of Cat6 cabling" for 989 SBCs.
	km := CableKilometers(PaperMicroFaaSNodes, PaperAssumptions())
	if math.Abs(km-1.8) > 0.05 {
		t.Fatalf("cable run = %.3f km, want ≈1.8 km", km)
	}
}

func TestLifetimeValidation(t *testing.T) {
	a := PaperAssumptions()
	if _, err := Lifetime(ClusterSpec{Name: "empty"}, Ideal(), a); err == nil {
		t.Fatal("empty cluster accepted")
	}
	spec := ConventionalRack(a)
	if _, err := Lifetime(spec, Scenario{Utilization: -0.1, OnlineRate: 1}, a); err == nil {
		t.Fatal("negative utilization accepted")
	}
	if _, err := Lifetime(spec, Scenario{Utilization: 2, OnlineRate: 1}, a); err == nil {
		t.Fatal("utilization > 1 accepted")
	}
	if _, err := Lifetime(spec, Scenario{Utilization: 0.5, OnlineRate: 0}, a); err == nil {
		t.Fatal("zero online rate accepted")
	}
}

func TestLowerOnlineRateRaisesOnlyCompute(t *testing.T) {
	a := PaperAssumptions()
	spec := MicroFaaSRack(a)
	full, err := Lifetime(spec, Scenario{Utilization: 1, OnlineRate: 1}, a)
	if err != nil {
		t.Fatal(err)
	}
	degraded, err := Lifetime(spec, Scenario{Utilization: 1, OnlineRate: 0.9}, a)
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Compute <= full.Compute {
		t.Fatal("replacements must raise compute cost")
	}
	if degraded.Network != full.Network || degraded.Energy != full.Energy {
		t.Fatal("online rate must not touch network or energy")
	}
}

func TestEnergyProportionalityAdvantage(t *testing.T) {
	// The structural claim behind Table II: dropping utilization cuts the
	// MicroFaaS energy bill almost proportionally (nodes power down),
	// while the conventional bill keeps paying 60 W idle per server.
	a := PaperAssumptions()
	mfFull, _ := Lifetime(MicroFaaSRack(a), Scenario{Utilization: 1, OnlineRate: 1}, a)
	mfHalf, _ := Lifetime(MicroFaaSRack(a), Scenario{Utilization: 0.5, OnlineRate: 1}, a)
	convFull, _ := Lifetime(ConventionalRack(a), Scenario{Utilization: 1, OnlineRate: 1}, a)
	convHalf, _ := Lifetime(ConventionalRack(a), Scenario{Utilization: 0.5, OnlineRate: 1}, a)
	mfDrop := 1 - mfHalf.Energy/mfFull.Energy
	convDrop := 1 - convHalf.Energy/convFull.Energy
	if mfDrop <= convDrop {
		t.Fatalf("energy drop at 50%% util: microfaas %.1f%% vs conventional %.1f%% — proportionality lost",
			mfDrop*100, convDrop*100)
	}
}

// Property: total cost is monotone in utilization and in node count.
func TestMonotonicityProperty(t *testing.T) {
	a := PaperAssumptions()
	prop := func(u1, u2 uint8, extra uint8) bool {
		x, y := float64(u1%101)/100, float64(u2%101)/100
		if x > y {
			x, y = y, x
		}
		lo, err1 := Lifetime(MicroFaaSRack(a), Scenario{Utilization: x, OnlineRate: 1}, a)
		hi, err2 := Lifetime(MicroFaaSRack(a), Scenario{Utilization: y, OnlineRate: 1}, a)
		if err1 != nil || err2 != nil {
			return false
		}
		if lo.Total() > hi.Total()+1e-9 {
			return false
		}
		small := MicroFaaSRack(a)
		big := small
		big.Nodes += int(extra)
		cs, err1 := Lifetime(small, Ideal(), a)
		cb, err2 := Lifetime(big, Ideal(), a)
		return err1 == nil && err2 == nil && cb.Total() >= cs.Total()-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
