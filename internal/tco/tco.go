// Package tco implements the paper's 5-year single-rack total-cost-of-
// ownership analysis (Table II), a simplified form of the Cui et al.
// datacenter TCO model with the assumptions from the paper's Appendix.
//
// The arithmetic reproduces Table II to the dollar:
//
//   - Compute (server acquisition) = nodes × node cost, divided by the
//     online rate in the realistic scenario (5 % of nodes bought again).
//   - Network = switches × switch cost + nodes × $1.80 of Cat6 cable;
//     switches = ceil(nodes / 48 ports).
//   - Energy = (nodes × average node watts × SPUE + switches × switch
//     watts) × PUE × 43,200 h × $0.10/kWh. The hour count is five 360-day
//     years — the convention that makes every Table II energy cell match
//     exactly. Average node watts interpolate idle→loaded by utilization;
//     a MicroFaaS SBC "idles" fully powered down at 0.128 W.
package tco

import (
	"fmt"
	"math"
)

// Assumptions carries the Appendix's cost-model constants.
type Assumptions struct {
	// ServerCost is a mid-range rack server (Dell PowerEdge R6515): $2,011.
	ServerCost float64
	// SBCCost is a BeagleBone Black: $52.50.
	SBCCost float64
	// SwitchCost is a refurbished 48-port ToR switch: $500.
	SwitchCost float64
	// SwitchPorts sizes the number of ToR switches per rack.
	SwitchPorts int
	// CablePerNode is 6 ft of Cat6 at $0.30/ft: $1.80.
	CablePerNode float64
	// CableFeetPerNode feeds the cabling-length sanity check.
	CableFeetPerNode float64
	// PUE and SPUE are the benchmark datacenter's 1.3 and 1.2.
	PUE, SPUE float64
	// PricePerKWh is $0.10.
	PricePerKWh float64
	// Years and HoursPerYear define the lifespan: 5 × 8,640 h (360-day
	// years, matching the paper's arithmetic).
	Years        float64
	HoursPerYear float64
	// Node power draws (watts): servers 150/60, SBCs 1.96/0.128.
	ServerLoadW, ServerIdleW float64
	SBCLoadW, SBCIdleW       float64
	// SwitchW is the ToR switch draw: 40.87 W.
	SwitchW float64
}

// PaperAssumptions returns the Appendix constants.
func PaperAssumptions() Assumptions {
	return Assumptions{
		ServerCost:       2011,
		SBCCost:          52.50,
		SwitchCost:       500,
		SwitchPorts:      48,
		CablePerNode:     1.80,
		CableFeetPerNode: 6,
		PUE:              1.3,
		SPUE:             1.2,
		PricePerKWh:      0.10,
		Years:            5,
		HoursPerYear:     8640,
		ServerLoadW:      150,
		ServerIdleW:      60,
		SBCLoadW:         1.96,
		SBCIdleW:         0.128,
		SwitchW:          40.87,
	}
}

// Scenario is a utilization/online-rate operating point.
type Scenario struct {
	Name string
	// Utilization is the average node utilization in [0,1].
	Utilization float64
	// OnlineRate is the fraction of nodes that never need replacement.
	OnlineRate float64
}

// Ideal is Table II's "100% Util., 100% OR" column.
func Ideal() Scenario { return Scenario{Name: "ideal", Utilization: 1, OnlineRate: 1} }

// Realistic is Table II's "50% Util., 95% OR" column.
func Realistic() Scenario { return Scenario{Name: "realistic", Utilization: 0.5, OnlineRate: 0.95} }

// ClusterSpec describes one rack's worth of compute of either kind.
type ClusterSpec struct {
	Name string
	// Nodes is the compute-node count (servers or SBCs).
	Nodes int
	// NodeCost, NodeLoadW, NodeIdleW describe one node.
	NodeCost             float64
	NodeLoadW, NodeIdleW float64
}

// PaperConventionalNodes and PaperMicroFaaSNodes are the throughput-
// equivalent rack sizes Sec V estimates.
const (
	PaperConventionalNodes = 41
	PaperMicroFaaSNodes    = 989
)

// ConventionalRack returns the paper's 41-server rack.
func ConventionalRack(a Assumptions) ClusterSpec {
	return ClusterSpec{
		Name:      "conventional",
		Nodes:     PaperConventionalNodes,
		NodeCost:  a.ServerCost,
		NodeLoadW: a.ServerLoadW,
		NodeIdleW: a.ServerIdleW,
	}
}

// MicroFaaSRack returns the paper's throughput-equivalent 989-SBC rack.
func MicroFaaSRack(a Assumptions) ClusterSpec {
	return ClusterSpec{
		Name:      "microfaas",
		Nodes:     PaperMicroFaaSNodes,
		NodeCost:  a.SBCCost,
		NodeLoadW: a.SBCLoadW,
		NodeIdleW: a.SBCIdleW,
	}
}

// Cost is one Table II column for one cluster.
type Cost struct {
	Compute float64
	Network float64
	Energy  float64
}

// Total sums the expense rows.
func (c Cost) Total() float64 { return c.Compute + c.Network + c.Energy }

// Switches returns the ToR switch count for a node population.
func Switches(nodes int, a Assumptions) int {
	if a.SwitchPorts <= 0 {
		panic("tco: switch ports must be positive")
	}
	return int(math.Ceil(float64(nodes) / float64(a.SwitchPorts)))
}

// CableKilometers returns the total Cat6 run for a node population (the
// paper's "1.8 kilometers (1.1 miles)" aside).
func CableKilometers(nodes int, a Assumptions) float64 {
	return float64(nodes) * a.CableFeetPerNode * 0.3048 / 1000
}

// Lifetime computes one cluster's 5-year cost under a scenario.
func Lifetime(spec ClusterSpec, sc Scenario, a Assumptions) (Cost, error) {
	if spec.Nodes <= 0 {
		return Cost{}, fmt.Errorf("tco: cluster %q has no nodes", spec.Name)
	}
	if sc.Utilization < 0 || sc.Utilization > 1 {
		return Cost{}, fmt.Errorf("tco: utilization %v outside [0,1]", sc.Utilization)
	}
	if sc.OnlineRate <= 0 || sc.OnlineRate > 1 {
		return Cost{}, fmt.Errorf("tco: online rate %v outside (0,1]", sc.OnlineRate)
	}
	switches := Switches(spec.Nodes, a)

	compute := float64(spec.Nodes) * spec.NodeCost / sc.OnlineRate
	network := float64(switches)*a.SwitchCost + float64(spec.Nodes)*a.CablePerNode

	nodeAvgW := spec.NodeIdleW + (spec.NodeLoadW-spec.NodeIdleW)*sc.Utilization
	itWatts := float64(spec.Nodes)*nodeAvgW*a.SPUE + float64(switches)*a.SwitchW
	hours := a.Years * a.HoursPerYear
	energy := itWatts * a.PUE * hours / 1000 * a.PricePerKWh

	return Cost{Compute: compute, Network: network, Energy: energy}, nil
}

// Comparison is the full Table II: both clusters under both scenarios.
type Comparison struct {
	Scenario     Scenario
	Conventional Cost
	MicroFaaS    Cost
}

// Savings is the fractional TCO reduction MicroFaaS achieves.
func (c Comparison) Savings() float64 {
	return 1 - c.MicroFaaS.Total()/c.Conventional.Total()
}

// TableII computes the paper's Table II under the Appendix assumptions.
func TableII() ([]Comparison, error) {
	a := PaperAssumptions()
	var out []Comparison
	for _, sc := range []Scenario{Ideal(), Realistic()} {
		conv, err := Lifetime(ConventionalRack(a), sc, a)
		if err != nil {
			return nil, err
		}
		mf, err := Lifetime(MicroFaaSRack(a), sc, a)
		if err != nil {
			return nil, err
		}
		out = append(out, Comparison{Scenario: sc, Conventional: conv, MicroFaaS: mf})
	}
	return out, nil
}
