// Package bootos models the worker operating system's boot process and the
// sequence of optimizations the paper applies to it (Sec IV-A, Fig 1).
//
// The paper builds a Linux-From-Scratch-style worker OS and drives its boot
// time down through nine documented optimizations (labelled A-I), ending at
// 1.51 s wall-clock on the ARM SBC and 0.96 s on x86. We do not have the
// hardware to re-measure each development stage, so this package substitutes
// a component model: boot time is the sum of labelled components
// (bootloader, kernel, network driver, network configuration, userspace),
// and each optimization removes a documented amount of Real (wall-clock) and
// CPU (non-idle) time from one component. The per-stage reductions are
// synthetic but preserve each optimization's described effect — e.g.
// skipping Ethernet auto-negotiation (F) removes seconds of Real time but
// almost no CPU time, while trimming the kernel config (B) removes both.
// The final stage reproduces the paper's 1.51 s / 0.96 s exactly.
package bootos

import (
	"fmt"
	"time"
)

// Platform selects the worker hardware the OS boots on.
type Platform int

const (
	// ARM is the BeagleBone Black's TI Sitara AM3358 (Cortex-A8, 1 GHz).
	ARM Platform = iota
	// X86 is a QEMU microVM vCPU on the Opteron 6172 rack server.
	X86
)

func (p Platform) String() string {
	if p == ARM {
		return "arm"
	}
	return "x86"
}

// Component is one labelled slice of the boot process.
type Component struct {
	Name string
	Real time.Duration // wall-clock time from power-on contribution
	CPU  time.Duration // time the CPU is non-idle during this slice
}

// Profile is the boot behaviour of one OS build on one platform.
type Profile struct {
	Platform   Platform
	Components []Component
}

// RealTime is the wall-clock time from power-on to first network
// connection — the paper's "Real" series in Fig 1.
func (p Profile) RealTime() time.Duration {
	var sum time.Duration
	for _, c := range p.Components {
		sum += c.Real
	}
	return sum
}

// CPUTime is the total non-idle CPU time during boot — Fig 1's "CPU".
func (p Profile) CPUTime() time.Duration {
	var sum time.Duration
	for _, c := range p.Components {
		sum += c.CPU
	}
	return sum
}

// Component returns the named component, or false if absent.
func (p Profile) Component(name string) (Component, bool) {
	for _, c := range p.Components {
		if c.Name == name {
			return c, true
		}
	}
	return Component{}, false
}

// clone returns a deep copy so optimizations never alias profiles.
func (p Profile) clone() Profile {
	out := Profile{Platform: p.Platform, Components: make([]Component, len(p.Components))}
	copy(out.Components, p.Components)
	return out
}

// Optimization is one development step from Fig 1. Applying it subtracts
// Real/CPU time from one component of the profile.
type Optimization struct {
	// ID is the paper's single-letter label (A-I).
	ID string
	// Name describes the change, e.g. "skip Ethernet auto-negotiation".
	Name string
	// Component names the boot slice the change shortens.
	Component string
	// Reduction maps platform -> (Real, CPU) time removed. A platform
	// absent from the map is unaffected (e.g. the vendor PHY patch G only
	// applies to the SBC).
	Reduction map[Platform][2]time.Duration
}

// Apply returns prof with the optimization's reduction subtracted. It
// panics if the reduction would drive a component negative, which would
// indicate an inconsistent model.
func (o Optimization) Apply(prof Profile) Profile {
	red, ok := o.Reduction[prof.Platform]
	if !ok {
		return prof.clone()
	}
	out := prof.clone()
	for i := range out.Components {
		c := &out.Components[i]
		if c.Name != o.Component {
			continue
		}
		c.Real -= red[0]
		c.CPU -= red[1]
		if c.Real < 0 || c.CPU < 0 {
			panic(fmt.Sprintf("bootos: optimization %s drives component %s negative", o.ID, c.Name))
		}
		return out
	}
	panic(fmt.Sprintf("bootos: optimization %s targets unknown component %s", o.ID, o.Component))
}

const (
	compBootloader = "bootloader"
	compKernel     = "kernel"
	compNetDriver  = "netdriver"
	compNetConfig  = "netconfig"
	compUserspace  = "userspace"
)

// ms builds a duration from milliseconds, keeping the tables readable.
func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

// FinalProfile returns the fully-optimized worker OS boot profile. Its
// RealTime matches the paper exactly: 1.51 s on ARM, 0.96 s on x86.
func FinalProfile(p Platform) Profile {
	switch p {
	case ARM:
		return Profile{Platform: ARM, Components: []Component{
			{compBootloader, ms(180), ms(60)}, // U-Boot falcon mode: SPL loads the kernel directly
			{compKernel, ms(620), ms(600)},    // decompress + core init of the trimmed kernel
			{compNetDriver, ms(240), ms(80)},  // patched CPSW driver, no autoneg, no PHY reset
			{compNetConfig, ms(60), ms(20)},   // static IPv4 from the kernel command line
			{compUserspace, ms(410), ms(350)}, // initramfs: BusyBox init + MicroPython
		}}
	case X86:
		return Profile{Platform: X86, Components: []Component{
			{compBootloader, ms(150), ms(30)},
			{compKernel, ms(420), ms(400)},
			{compNetDriver, ms(130), ms(40)},
			{compNetConfig, ms(40), ms(15)},
			{compUserspace, ms(220), ms(190)},
		}}
	default:
		panic(fmt.Sprintf("bootos: unknown platform %d", int(p)))
	}
}

// Optimizations returns the paper's nine development steps in the order we
// present the timeline. Reductions are the synthetic per-stage savings
// described in the package comment.
func Optimizations() []Optimization {
	return []Optimization{
		{
			ID: "A", Name: "kernel version selection", Component: compKernel,
			Reduction: map[Platform][2]time.Duration{
				ARM: {ms(800), ms(500)},
				X86: {ms(600), ms(350)},
			},
		},
		{
			ID: "B", Name: "minimal kernel configuration", Component: compKernel,
			Reduction: map[Platform][2]time.Duration{
				ARM: {ms(5200), ms(3300)},
				X86: {ms(3400), ms(2300)},
			},
		},
		{
			ID: "C", Name: "MicroPython-only initramfs", Component: compUserspace,
			Reduction: map[Platform][2]time.Duration{
				ARM: {ms(7400), ms(4100)},
				X86: {ms(5200), ms(3100)},
			},
		},
		{
			ID: "D", Name: "initramfs as sole root filesystem", Component: compUserspace,
			Reduction: map[Platform][2]time.Duration{
				ARM: {ms(2600), ms(900)},
				X86: {ms(1800), ms(600)},
			},
		},
		{
			ID: "E", Name: "U-Boot falcon mode", Component: compBootloader,
			Reduction: map[Platform][2]time.Duration{
				ARM: {ms(1900), ms(500)}, // SBC-only: microVMs have no U-Boot
			},
		},
		{
			ID: "F", Name: "skip Ethernet auto-negotiation", Component: compNetDriver,
			Reduction: map[Platform][2]time.Duration{
				ARM: {ms(2700), ms(30)}, // seconds of Real time, near-zero CPU
				X86: {ms(2700), ms(20)},
			},
		},
		{
			ID: "G", Name: "avoid PHY hardware reset (vendor patch)", Component: compNetDriver,
			Reduction: map[Platform][2]time.Duration{
				ARM: {ms(1400), ms(20)}, // SBC-only vendor-specific patch
			},
		},
		{
			ID: "H", Name: "static IPv4 via kernel arguments (no DHCP)", Component: compNetConfig,
			Reduction: map[Platform][2]time.Duration{
				ARM: {ms(3100), ms(120)},
				X86: {ms(3100), ms(100)},
			},
		},
		{
			ID: "I", Name: "early network driver initialization", Component: compNetDriver,
			Reduction: map[Platform][2]time.Duration{
				ARM: {ms(900), ms(100)},
				X86: {ms(700), ms(80)},
			},
		},
	}
}

// BaselineProfile returns the stage-0 (unoptimized) boot profile: the final
// profile with every optimization's savings added back.
func BaselineProfile(p Platform) Profile {
	prof := FinalProfile(p)
	for _, o := range Optimizations() {
		red, ok := o.Reduction[p]
		if !ok {
			continue
		}
		for i := range prof.Components {
			if prof.Components[i].Name == o.Component {
				prof.Components[i].Real += red[0]
				prof.Components[i].CPU += red[1]
				break
			}
		}
	}
	return prof
}

// Stage is one point on the Fig 1 development timeline.
type Stage struct {
	// Label is "baseline" or the optimization's "ID: name".
	Label   string
	Profile Profile
}

// Timeline returns the cumulative development history for a platform:
// stage 0 is the baseline, and each later stage applies one more
// optimization, ending at the final profile.
func Timeline(p Platform) []Stage {
	prof := BaselineProfile(p)
	stages := []Stage{{Label: "baseline", Profile: prof}}
	for _, o := range Optimizations() {
		prof = o.Apply(prof)
		stages = append(stages, Stage{
			Label:   fmt.Sprintf("%s: %s", o.ID, o.Name),
			Profile: prof,
		})
	}
	return stages
}

// BootTime returns the fully-optimized wall-clock boot time for a platform.
// This is the value every node model in the simulator uses: 1.51 s for SBC
// workers, 0.96 s for microVM workers.
func BootTime(p Platform) time.Duration { return FinalProfile(p).RealTime() }

// BootCPUFraction returns the share of boot wall-clock time during which
// the CPU is non-idle. The rack server's contention model uses this: a
// booting VM loads its host core at this fraction.
func BootCPUFraction(p Platform) float64 {
	prof := FinalProfile(p)
	return float64(prof.CPUTime()) / float64(prof.RealTime())
}
