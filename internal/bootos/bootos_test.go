package bootos

import (
	"testing"
	"time"
)

func TestFinalBootTimesMatchPaper(t *testing.T) {
	// Sec IV-A: "an OS that boots quickly (1.51 seconds on ARM; 0.96
	// seconds on x86)".
	if got := BootTime(ARM); got != 1510*time.Millisecond {
		t.Fatalf("ARM boot = %v, want 1.51s", got)
	}
	if got := BootTime(X86); got != 960*time.Millisecond {
		t.Fatalf("x86 boot = %v, want 0.96s", got)
	}
}

func TestCPUNeverExceedsReal(t *testing.T) {
	for _, p := range []Platform{ARM, X86} {
		for _, st := range Timeline(p) {
			for _, c := range st.Profile.Components {
				if c.CPU > c.Real {
					t.Fatalf("%v %q component %q: CPU %v > Real %v",
						p, st.Label, c.Name, c.CPU, c.Real)
				}
			}
		}
	}
}

func TestTimelineMonotonicallyImproves(t *testing.T) {
	for _, p := range []Platform{ARM, X86} {
		stages := Timeline(p)
		for i := 1; i < len(stages); i++ {
			if stages[i].Profile.RealTime() > stages[i-1].Profile.RealTime() {
				t.Fatalf("%v stage %q regressed Real time", p, stages[i].Label)
			}
			if stages[i].Profile.CPUTime() > stages[i-1].Profile.CPUTime() {
				t.Fatalf("%v stage %q regressed CPU time", p, stages[i].Label)
			}
		}
	}
}

func TestTimelineEndsAtFinalProfile(t *testing.T) {
	for _, p := range []Platform{ARM, X86} {
		stages := Timeline(p)
		last := stages[len(stages)-1].Profile
		if last.RealTime() != FinalProfile(p).RealTime() {
			t.Fatalf("%v timeline end Real %v != final %v",
				p, last.RealTime(), FinalProfile(p).RealTime())
		}
		if last.CPUTime() != FinalProfile(p).CPUTime() {
			t.Fatalf("%v timeline end CPU mismatch", p)
		}
	}
}

func TestBaselineIsFinalPlusAllReductions(t *testing.T) {
	for _, p := range []Platform{ARM, X86} {
		var totalRed time.Duration
		for _, o := range Optimizations() {
			if red, ok := o.Reduction[p]; ok {
				totalRed += red[0]
			}
		}
		base, fin := BaselineProfile(p), FinalProfile(p)
		if base.RealTime() != fin.RealTime()+totalRed {
			t.Fatalf("%v baseline Real %v != final %v + reductions %v",
				p, base.RealTime(), fin.RealTime(), totalRed)
		}
	}
}

func TestBaselineIsUnoptimizedDistroScale(t *testing.T) {
	// A stock distro on a BeagleBone boots in tens of seconds; the model's
	// baseline should be in that regime, and x86 should be faster.
	arm, x86 := BaselineProfile(ARM).RealTime(), BaselineProfile(X86).RealTime()
	if arm < 15*time.Second || arm > 60*time.Second {
		t.Fatalf("ARM baseline %v outside plausible stock-distro range", arm)
	}
	if x86 >= arm {
		t.Fatalf("x86 baseline %v should beat ARM baseline %v", x86, arm)
	}
}

func TestAutonegSavesRealNotCPU(t *testing.T) {
	// Optimization F's whole point: auto-negotiation is wall-clock delay,
	// not computation (Fig 1 shows the Real bar dropping with CPU flat).
	for _, o := range Optimizations() {
		if o.ID != "F" {
			continue
		}
		for p, red := range o.Reduction {
			if red[0] < 2*time.Second {
				t.Fatalf("autoneg skip on %v saves only %v Real, want seconds", p, red[0])
			}
			if red[1] > 100*time.Millisecond {
				t.Fatalf("autoneg skip on %v saves %v CPU, want ≈0", p, red[1])
			}
		}
		return
	}
	t.Fatal("optimization F missing")
}

func TestARMOnlyOptimizations(t *testing.T) {
	// E (falcon-mode U-Boot) and G (vendor PHY patch) apply only to the SBC.
	for _, o := range Optimizations() {
		switch o.ID {
		case "E", "G":
			if _, ok := o.Reduction[X86]; ok {
				t.Fatalf("optimization %s must not affect x86", o.ID)
			}
			if _, ok := o.Reduction[ARM]; !ok {
				t.Fatalf("optimization %s must affect ARM", o.ID)
			}
		}
	}
}

func TestAllNineOptimizationsPresent(t *testing.T) {
	want := map[string]bool{"A": true, "B": true, "C": true, "D": true,
		"E": true, "F": true, "G": true, "H": true, "I": true}
	for _, o := range Optimizations() {
		if !want[o.ID] {
			t.Fatalf("unexpected or duplicate optimization %q", o.ID)
		}
		delete(want, o.ID)
	}
	if len(want) != 0 {
		t.Fatalf("missing optimizations: %v", want)
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	base := BaselineProfile(ARM)
	before := base.RealTime()
	Optimizations()[0].Apply(base)
	if base.RealTime() != before {
		t.Fatal("Apply mutated its input profile")
	}
}

func TestApplyUnknownComponentPanics(t *testing.T) {
	o := Optimization{ID: "Z", Component: "nonexistent",
		Reduction: map[Platform][2]time.Duration{ARM: {time.Second, 0}}}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on unknown component")
		}
	}()
	o.Apply(FinalProfile(ARM))
}

func TestApplyNegativePanics(t *testing.T) {
	o := Optimization{ID: "Z", Component: "kernel",
		Reduction: map[Platform][2]time.Duration{ARM: {time.Hour, 0}}}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on negative component time")
		}
	}()
	o.Apply(FinalProfile(ARM))
}

func TestComponentLookup(t *testing.T) {
	prof := FinalProfile(ARM)
	if _, ok := prof.Component("kernel"); !ok {
		t.Fatal("kernel component missing")
	}
	if _, ok := prof.Component("flux-capacitor"); ok {
		t.Fatal("unexpected component")
	}
}

func TestBootCPUFraction(t *testing.T) {
	for _, p := range []Platform{ARM, X86} {
		f := BootCPUFraction(p)
		if f <= 0 || f > 1 {
			t.Fatalf("%v boot CPU fraction %v outside (0,1]", p, f)
		}
	}
	// Boot is compute-heavy on both platforms (decompression, init);
	// the contention model relies on this being well above half.
	if f := BootCPUFraction(X86); f < 0.6 {
		t.Fatalf("x86 boot CPU fraction %v unexpectedly low", f)
	}
}

func TestSBCRebootsUnderTwoSeconds(t *testing.T) {
	// Sec III-a: "SBCs... can be rebooted in less than 2 seconds".
	if BootTime(ARM) >= 2*time.Second {
		t.Fatal("SBC boot must be under 2 seconds")
	}
}

func TestPlatformString(t *testing.T) {
	if ARM.String() != "arm" || X86.String() != "x86" {
		t.Fatal("platform names wrong")
	}
}
