module microfaas

go 1.22
