package microfaas

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"microfaas/internal/bootos"
	"microfaas/internal/experiments"
	"microfaas/internal/forecast"
	"microfaas/internal/model"
	"microfaas/internal/telemetry"
	"microfaas/internal/tsdb"
)

// The benchmark harness: one benchmark per paper table/figure (plus the
// ablations). Each regenerates its experiment end-to-end and reports the
// headline quantities as custom metrics, so `go test -bench=. -benchmem`
// doubles as the reproduction run. EXPERIMENTS.md records the measured
// values next to the paper's.

// BenchmarkFig1BootStages regenerates the Fig 1 boot-time development
// timeline and reports the final ARM/x86 boot times.
func BenchmarkFig1BootStages(b *testing.B) {
	var rows []Fig1Row
	for i := 0; i < b.N; i++ {
		rows = Fig1()
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.ARMReal.Seconds(), "arm-boot-s")
	b.ReportMetric(last.X86Real.Seconds(), "x86-boot-s")
	b.ReportMetric(rows[0].ARMReal.Seconds(), "arm-baseline-s")
}

// BenchmarkFig3Runtimes regenerates the per-function runtime split on both
// clusters (Fig 3) and reports the paper's 4/9/4 speed-class split.
func BenchmarkFig3Runtimes(b *testing.B) {
	var rows []Fig3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = Fig3(Fig3Config{InvocationsPerFunction: 40, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	faster, atHalf, below := 0, 0, 0
	for _, r := range rows {
		switch {
		case r.SpeedRatio > 1:
			faster++
		case r.SpeedRatio > 0.5:
			atHalf++
		default:
			below++
		}
	}
	b.ReportMetric(float64(faster), "faster-fns")
	b.ReportMetric(float64(atHalf), "half-speed-fns")
	b.ReportMetric(float64(below), "below-half-fns")
}

// BenchmarkFig4VMSweep regenerates the VM-count efficiency sweep (Fig 4)
// and reports the conventional cluster's peak efficiency.
func BenchmarkFig4VMSweep(b *testing.B) {
	var res Fig4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = Fig4(Fig4Config{MaxVMs: 24, JobsPerVM: 150, Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.PeakJoules, "peak-J/func")
	b.ReportMetric(float64(res.PeakVMs), "peak-VMs")
	b.ReportMetric(res.MicroFaaSJoules, "microfaas-J/func")
}

// BenchmarkFig5PowerSweep regenerates the energy-proportionality power
// sweep (Fig 5) and reports the idle offsets of both clusters.
func BenchmarkFig5PowerSweep(b *testing.B) {
	var pts []Fig5Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = Fig5(Fig5Config{MaxWorkers: 10, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].MicroFaaSWatts, "mf-idle-W")
	b.ReportMetric(pts[0].ConventionalWatts, "conv-idle-W")
	b.ReportMetric(pts[len(pts)-1].MicroFaaSWatts, "mf-full-W")
	b.ReportMetric(pts[len(pts)-1].ConventionalWatts, "conv-full-W")
}

// BenchmarkHeadline regenerates Sec V's throughput-matched comparison.
func BenchmarkHeadline(b *testing.B) {
	var res HeadlineResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = Headline(HeadlineConfig{InvocationsPerFunction: 60, Seed: 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.SBCThroughputPerMin, "sbc-func/min")
	b.ReportMetric(res.VMThroughputPerMin, "vm-func/min")
	b.ReportMetric(res.MicroFaaSJoules, "mf-J/func")
	b.ReportMetric(res.ConventionalJoules, "conv-J/func")
	b.ReportMetric(res.EfficiencyGain, "gain-x")
}

// BenchmarkTable2TCO regenerates the 5-year TCO comparison (Table II).
func BenchmarkTable2TCO(b *testing.B) {
	var rows []TCOComparison
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = TableII()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].MicroFaaS.Total(), "ideal-mf-usd")
	b.ReportMetric(rows[0].Conventional.Total(), "ideal-conv-usd")
	b.ReportMetric(rows[0].Savings()*100, "ideal-savings-pct")
	b.ReportMetric(rows[1].Savings()*100, "realistic-savings-pct")
}

// BenchmarkAblationCryptoAccel measures the crypto-accelerator variant.
func BenchmarkAblationCryptoAccel(b *testing.B) {
	var res AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = AblationCryptoAccel(8, 5, 25, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Speedup(), "throughput-gain-x")
	b.ReportMetric(res.ModifiedJoules, "J/func")
}

// BenchmarkAblationGigE measures the Gigabit-NIC variant.
func BenchmarkAblationGigE(b *testing.B) {
	var res AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = AblationGigE(6, 25, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Speedup(), "throughput-gain-x")
}

// BenchmarkAblationNoReboot measures the no-reboot variant (the price of
// the Sec III-a isolation guarantee).
func BenchmarkAblationNoReboot(b *testing.B) {
	var res AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = AblationNoReboot(7, 25, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Speedup(), "throughput-gain-x")
	b.ReportMetric(res.ModifiedJoules, "J/func")
}

// BenchmarkRackScale simulates the Table II racks end-to-end: 989 SBCs vs
// 41 servers × 16 VMs (1,645 concurrent simulated workers), measuring
// whether the paper's throughput-equivalence estimate holds.
func BenchmarkRackScale(b *testing.B) {
	var res experiments.RackScaleResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RackScale(experiments.RackScaleConfig{JobsPerWorker: 4, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.SBCThroughput, "sbc-rack-func/min")
	b.ReportMetric(res.ServerThroughput, "conv-rack-func/min")
	b.ReportMetric(res.SBCThroughput/res.ServerThroughput, "throughput-ratio")
	b.ReportMetric(res.ServerPowerW/res.SBCPowerW, "power-ratio-x")
}

// BenchmarkLoadSweep measures the open-load energy-proportionality sweep
// and reports the low-load J/function blowup of each cluster.
func BenchmarkLoadSweep(b *testing.B) {
	var pts []LoadSweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = LoadSweep(LoadSweepConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	low, high := pts[0], pts[len(pts)-1]
	b.ReportMetric(low.ConvJoulesPer/high.ConvJoulesPer, "conv-lowload-blowup-x")
	b.ReportMetric(low.MFJoulesPer/high.MFJoulesPer, "mf-lowload-blowup-x")
	b.ReportMetric(low.ConvJoulesPer/low.MFJoulesPer, "gain-at-10pct-load-x")
}

// BenchmarkKeepWarm measures the warm-pool extension: latency saved and
// energy paid relative to the paper's power-down-immediately policy.
func BenchmarkKeepWarm(b *testing.B) {
	var pts []KeepWarmPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = KeepWarm(KeepWarmConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	paper, warm := pts[0], pts[len(pts)-1]
	b.ReportMetric(paper.MeanLatency.Seconds(), "paper-latency-s")
	b.ReportMetric(warm.MeanLatency.Seconds(), "warm-latency-s")
	b.ReportMetric(warm.JoulesPerFunc/paper.JoulesPerFunc, "warm-energy-cost-x")
	b.ReportMetric(warm.WarmFraction*100, "warm-hit-pct")
}

// BenchmarkDiurnal replays a synthetic day (≈137k invocations) into both
// clusters and reports the daily energy comparison.
func BenchmarkDiurnal(b *testing.B) {
	var res DiurnalResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = Diurnal(DiurnalConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Invocations), "invocations")
	b.ReportMetric(res.MF.KWh, "mf-kWh/day")
	b.ReportMetric(res.Conv.KWh, "conv-kWh/day")
	b.ReportMetric(res.Conv.KWh/res.MF.KWh, "daily-energy-ratio-x")
}

// BenchmarkSensitivity runs the calibration-perturbation study and
// reports the gain distribution under ±20% service-time noise.
func BenchmarkSensitivity(b *testing.B) {
	var res SensitivityResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = Sensitivity(SensitivityConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MinGain, "min-gain-x")
	b.ReportMetric(res.MedianGain, "median-gain-x")
	b.ReportMetric(res.MaxGain, "max-gain-x")
	b.ReportMetric(float64(res.TrialsBelowParity), "flipped-trials")
}

// BenchmarkLiveInvocation measures one end-to-end live invocation: OP →
// TCP → worker → real function → result (no reboot pause, CPU-bound
// function) — the live runtime's floor latency.
func BenchmarkLiveInvocation(b *testing.B) {
	l, err := StartLiveCluster(LiveOptions{Workers: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	args := []byte(`{"rounds":100,"seed":"bench"}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Orch.Submit("CascSHA", args)
		l.Orch.Quiesce()
	}
	b.StopTimer()
	if l.Orch.Collector().ErrorCount() != 0 {
		b.Fatal("live invocations failed")
	}
}

// BenchmarkWorkloadSuiteDirect measures the 17 real functions executed
// back-to-back in-process (no cluster), the pure compute cost of the
// suite's Go implementations.
func BenchmarkWorkloadSuiteDirect(b *testing.B) {
	l, err := StartLiveCluster(LiveOptions{Workers: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	fns := Functions()
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := fns[i%len(fns)]
		if _, err := f.Run(l.Env, f.GenArgs(rng)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorEventRate measures raw DES throughput: how many
// simulated MicroFaaS job cycles the engine executes per wall second
// (capacity planning for datacenter-scale runs).
func BenchmarkSimulatorEventRate(b *testing.B) {
	s, err := NewMicroFaaSSim(model.SBCCount, SimOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	ids := s.Orch.Workers()
	fns := model.Functions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Orch.SubmitTo(ids[i%len(ids)], fns[i%len(fns)].Name, nil); err != nil {
			b.Fatal(err)
		}
	}
	s.Engine.RunAll()
	b.StopTimer()
	if s.Orch.Pending() != 0 {
		b.Fatal("jobs stuck")
	}
}

// BenchmarkBootModel exercises the Fig 1 component model itself.
func BenchmarkBootModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if bootos.BootTime(bootos.ARM) <= 0 {
			b.Fatal("boot model broken")
		}
		bootos.Timeline(bootos.X86)
	}
}

// BenchmarkBootImpact sweeps the Fig 1 OS stages at cluster level and
// reports how much throughput the boot-time engineering bought.
func BenchmarkBootImpact(b *testing.B) {
	var rows []BootImpactRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = BootImpact(BootImpactConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	b.ReportMetric(first.ThroughputPerMin, "baseline-func/min")
	b.ReportMetric(last.ThroughputPerMin, "final-func/min")
	b.ReportMetric(last.ThroughputPerMin/first.ThroughputPerMin, "os-work-gain-x")
}

// BenchmarkExperimentSuiteSerial renders the full `microfaas-sim all`
// report on one core — the baseline the parallel runner is measured
// against.
func BenchmarkExperimentSuiteSerial(b *testing.B) {
	benchmarkExperimentSuite(b, 1)
}

// BenchmarkExperimentSuiteParallel renders the same report with the
// worker pool at GOMAXPROCS. Output is byte-identical to the serial run
// (the determinism tests enforce it); only wall-clock should move.
func BenchmarkExperimentSuiteParallel(b *testing.B) {
	benchmarkExperimentSuite(b, 0) // 0 = GOMAXPROCS
}

func benchmarkExperimentSuite(b *testing.B, parallel int) {
	var n int64
	for i := 0; i < b.N; i++ {
		var sink countingWriter
		if err := experiments.WriteAll(&sink, experiments.AllConfig{
			InvocationsPerFunction: 40, Seed: 1, Parallel: parallel,
		}); err != nil {
			b.Fatal(err)
		}
		n = sink.n
	}
	b.ReportMetric(float64(n), "report-bytes")
	b.ReportMetric(float64(experiments.Parallelism(parallel)), "pool-size")
}

// countingWriter discards output while keeping the report honest about
// how much it rendered.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// BenchmarkRackScale10K simulates the 10,000-SBC MicroFaaS rack against
// the throughput-matched 415-server conventional rack — the PR's
// dispatch-scalability target (the indexed free-list keeps the
// orchestrator's dispatch O(1) per job at this worker count).
func BenchmarkRackScale10K(b *testing.B) {
	var res experiments.RackScaleResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RackScale(experiments.RackScaleConfig{
			SBCs: 10000, Servers: 415, JobsPerWorker: 2, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.SBCThroughput, "sbc-rack-func/min")
	b.ReportMetric(res.SBCThroughput/res.ServerThroughput, "throughput-ratio")
}

// BenchmarkShardedRackScale runs the sharded-control-plane experiment at
// full scale — 64 shards × 1100 SBCs behind the consistent-hash
// load-balancer tier — and reports the sustained cluster throughput
// (the >1M func/min target), the bounded-load + aggregator gain over
// plain consistent hashing, and the hot-key p99 relief the cross-shard
// work stealer provides.
func BenchmarkShardedRackScale(b *testing.B) {
	var res experiments.ShardedRackResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.ShardedRack(experiments.ShardedRackConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	byName := map[string]experiments.ShardedArm{}
	for _, a := range res.Arms {
		byName[a.Name] = a
	}
	full, plain := byName["uniform/full"], byName["uniform/plain"]
	hotPlain, hotSteal := byName["hotkey/plain"], byName["hotkey/steal"]
	b.ReportMetric(full.SustainedPerMin, "sustained-func/min")
	b.ReportMetric(full.SustainedPerMin/plain.SustainedPerMin, "bounded-load-gain-x")
	b.ReportMetric(hotPlain.P99S/hotSteal.P99S, "steal-p99-relief-x")
	b.ReportMetric(float64(hotSteal.Stolen), "stolen-jobs")
}

// BenchmarkShardFailover runs the dynamic-membership experiment at full
// scale — 64 shards, 4 killed mid-run — and reports the failover
// headlines: accepted invocations lost (must stay 0), the post-recovery
// throughput as a fraction of the pre-kill rate, and the energy
// overhead the health checker and drain machinery add over the static
// baseline.
func BenchmarkShardFailover(b *testing.B) {
	var res experiments.ShardFailoverResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.ShardFailover(experiments.ShardFailoverConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	static, failover := res.Arms[0], res.Arms[1]
	b.ReportMetric(float64(failover.Lost), "lost-invocations")
	b.ReportMetric(failover.Recovery, "throughput-recovery-x")
	b.ReportMetric(float64(failover.Deaths), "shard-deaths")
	b.ReportMetric(failover.JoulesPerFunc/static.JoulesPerFunc, "energy-overhead-x")
}

// BenchmarkTSDBScrape measures one observability tick at sharded-plane
// cardinality: 8 shard registries, each carrying 16 functions' outcome
// counters, energy counters, and latency histograms, scraped into the
// embedded store with the shipped latency/error/energy burn-rate rules
// evaluated on every tick. The capacity aggregator runs this hook every
// tick in sim and the live scraper every -scrape-interval, so this cost
// sets the floor on how fine the sampling cadence can go.
func BenchmarkTSDBScrape(b *testing.B) {
	store := tsdb.New(tsdb.Config{})
	buckets := telemetry.LogBuckets(1e-3, 60, 20)
	for s := 0; s < 8; s++ {
		reg := telemetry.NewRegistry()
		for f := 0; f < 16; f++ {
			fn := fmt.Sprintf("fn-%02d", f)
			reg.Counter("microfaas_function_invocations_total", "Outcomes.", "function", fn, "result", "ok").Add(float64(100 + f))
			reg.Counter("microfaas_function_invocations_total", "Outcomes.", "function", fn, "result", "error").Add(float64(f % 3))
			reg.Counter("microfaas_function_energy_joules_total", "Joules.", "function", fn).Add(float64(50 + f))
			h := reg.Histogram("microfaas_invocation_latency_seconds", "Latency.", buckets, "function", fn)
			for i := 0; i < 4; i++ {
				h.Observe(0.01 * float64(f+i+1))
			}
		}
		reg.Counter("microfaas_jobs_submitted_total", "Submitted.").Add(1000)
		reg.Gauge("microfaas_queue_depth", "Depth.").Set(3)
		store.AddSource(fmt.Sprintf("shard-%02d", s), reg)
	}
	rules, err := tsdb.LoadRules("examples/slo/rules.json")
	if err != nil {
		b.Fatal(err)
	}
	if err := store.SetRules(rules); err != nil {
		b.Fatal(err)
	}
	now := time.Second
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.Scrape(now)
		now += time.Second
	}
	b.StopTimer()
	b.ReportMetric(float64(store.SeriesCount()), "series")
}

// BenchmarkForecastTick measures one predictor tick at the predictive
// arm's cardinality: 16 functions' submission counters scraped into the
// embedded store, then one Observe+Predict pass over all of them
// (observe-only — actuation on top is a couple of mutex'd warm-pool
// calls). The forecast controller runs this on every aggregator tick in
// the sim and every scrape interval live, so it must stay cheap next to
// the scrape itself.
func BenchmarkForecastTick(b *testing.B) {
	reg := telemetry.NewRegistry()
	subs := make([]*telemetry.Counter, 16)
	for f := range subs {
		subs[f] = reg.Counter(tsdb.MetricSubmittedByFunction, "Submitted.",
			"function", fmt.Sprintf("fn-%02d", f))
	}
	store := tsdb.New(tsdb.Config{})
	store.AddSource("", reg)
	ctl, err := forecast.NewController(forecast.ControllerConfig{
		Store:  store,
		Policy: forecast.Policy{Tick: time.Second},
	})
	if err != nil {
		b.Fatal(err)
	}
	now := time.Second
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for f, c := range subs {
			c.Add(float64(1 + (i+f)%3))
		}
		store.Scrape(now)
		ctl.Tick(now)
		now += time.Second
	}
	b.StopTimer()
	b.ReportMetric(ctl.Snapshot().ErrorRatio, "err-ratio")
}

// BenchmarkPredictivePower regenerates the four-arm power-management
// comparison (per-job / always-on / reactive managed / predictive) over
// the 2 h diurnal trace and reports the headline pair at each
// utilization level: energy savings vs always-on and p99 latency, for
// the predictive arm next to the reactive one. EXPERIMENTS.md records
// these values; the acceptance bar is predictive ≥ reactive on both.
func BenchmarkPredictivePower(b *testing.B) {
	var res experiments.PowerMgmtResult
	for i := 0; i < b.N; i++ {
		var err error
		// Seed 1 matches the microfaas-sim CLI default, so the metrics
		// line up with the EXPERIMENTS.md table.
		res, err = experiments.PowerMgmt(experiments.PowerMgmtConfig{Predict: true, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, lv := range res.Levels {
		u := int(lv.Utilization * 100)
		b.ReportMetric(100*lv.SavingsPredictive, fmt.Sprintf("pred-save%d", u))
		b.ReportMetric(100*lv.SavingsVsAlwaysOn, fmt.Sprintf("mgd-save%d", u))
		b.ReportMetric(lv.Predictive.P99Latency.Seconds(), fmt.Sprintf("pred-p99s%d", u))
		b.ReportMetric(lv.Managed.P99Latency.Seconds(), fmt.Sprintf("mgd-p99s%d", u))
	}
}
