// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document on stdout — the format of the repo's
// committed BENCH_*.json baselines (`make bench` wires it up).
//
// It understands the standard benchmark line shape
//
//	BenchmarkName-8    10    123456 ns/op    42 B/op    7 allocs/op    3.14 custom-unit
//
// plus the goos/goarch/cpu/pkg header lines, and ignores everything else
// (PASS, ok, test log noise).
//
// With -diff BASELINE.json it instead compares a fresh run (bench text on
// stdin, or another JSON document via -new) against the committed
// baseline and exits nonzero when a gated benchmark regressed more than
// -threshold percent in ns/op or allocs/op — the CI regression gate
// (`make bench-diff`). A gate entry may pin the gated unit with a
// "Name:unit" suffix (e.g. BenchmarkShardedRackScale:allocs/op) for
// benchmarks whose wall-clock is dominated by machine load rather than
// code — allocs/op is deterministic, ns/op on a shared box is not.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Document is the emitted file.
type Document struct {
	Label      string      `json:"label,omitempty"`
	Hardware   string      `json:"hardware,omitempty"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Date       string      `json:"date,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	label := flag.String("label", "", "free-form label recorded in the document")
	hardware := flag.String("hardware", "", "hardware note recorded in the document")
	diff := flag.String("diff", "", "baseline BENCH_*.json to compare against (enables diff mode)")
	newDoc := flag.String("new", "", "diff mode: read the fresh run from this JSON document instead of bench text on stdin")
	gate := flag.String("gate", "", "diff mode: comma-separated benchmark names to gate, each optionally suffixed :unit to gate that unit alone (default: every benchmark present in both documents)")
	threshold := flag.Float64("threshold", 20, "diff mode: max allowed regression percent in ns/op or allocs/op")
	flag.Parse()

	if *diff != "" {
		if err := runDiff(*diff, *newDoc, *gate, *threshold, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	doc, err := parseBenchText(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	doc.Label = *label
	doc.Hardware = *hardware
	doc.Date = time.Now().UTC().Format("2006-01-02")
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBenchText parses `go test -bench` text output into a Document
// (header fields only; label/hardware/date are the caller's).
func parseBenchText(r io.Reader) (Document, error) {
	var doc Document
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				b.Package = pkg
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	return doc, sc.Err()
}

// parseBenchLine parses one result line; ok is false for lines that only
// look like results (e.g. a benchmark name echoed by -v logging).
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Metrics: map[string]float64{}}
	if name, procs, ok := strings.Cut(b.Name, "-"); ok {
		if p, err := strconv.Atoi(procs); err == nil {
			b.Name, b.Procs = name, p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	// The rest alternate value/unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// gatedMetrics are the units the diff gate enforces; other units are
// reported but never fail the run.
var gatedMetrics = []string{"ns/op", "allocs/op"}

// runDiff loads the baseline document and a fresh run, prints per-
// benchmark deltas, and errors if any gated benchmark regressed beyond
// thresholdPct in a gated metric (or vanished from the fresh run).
func runDiff(baselinePath, newPath, gateList string, thresholdPct float64, w io.Writer) error {
	baseline, err := loadDocument(baselinePath)
	if err != nil {
		return err
	}
	var fresh Document
	if newPath != "" {
		fresh, err = loadDocument(newPath)
	} else {
		fresh, err = parseBenchText(os.Stdin)
	}
	if err != nil {
		return err
	}
	old := indexByName(baseline)
	cur := indexByName(fresh)

	var gated []string
	units := map[string][]string{}
	if gateList != "" {
		for _, entry := range strings.Split(gateList, ",") {
			if entry = strings.TrimSpace(entry); entry == "" {
				continue
			}
			name, unit, pinned := strings.Cut(entry, ":")
			if pinned {
				units[name] = append(units[name], unit)
			}
			if len(units[name]) <= 1 {
				gated = append(gated, name)
			}
		}
	} else {
		// Default gate: everything the two documents share.
		for name := range old {
			if _, ok := cur[name]; ok {
				gated = append(gated, name)
			}
		}
		sort.Strings(gated)
	}
	if len(gated) == 0 {
		return fmt.Errorf("diff %s: no benchmarks in common to gate", baselinePath)
	}

	var failures []string
	fmt.Fprintf(w, "baseline %s (%s)\n", baselinePath, baseline.Label)
	for _, name := range gated {
		ob, okOld := old[name]
		nb, okNew := cur[name]
		if !okOld || !okNew {
			failures = append(failures, fmt.Sprintf("%s: missing from %s document", name, missingSide(okOld, okNew)))
			continue
		}
		enforce := gatedMetrics
		if pinned := units[name]; len(pinned) > 0 {
			enforce = pinned
		}
		for _, unit := range enforce {
			ov, haveOld := ob.Metrics[unit]
			nv, haveNew := nb.Metrics[unit]
			if !haveOld || !haveNew || ov == 0 {
				continue // e.g. a baseline recorded without -benchmem
			}
			pct := (nv - ov) / ov * 100
			fmt.Fprintf(w, "  %-32s %-10s %14.5g -> %-14.5g %+.1f%%\n", name, unit, ov, nv, pct)
			if pct > thresholdPct {
				failures = append(failures,
					fmt.Sprintf("%s %s regressed %+.1f%% (%.5g -> %.5g, limit +%.0f%%)", name, unit, pct, ov, nv, thresholdPct))
			}
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(w, "gate passed: %d benchmarks within +%.0f%%\n", len(gated), thresholdPct)
	return nil
}

// loadDocument reads one BENCH_*.json file.
func loadDocument(path string) (Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Document{}, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return Document{}, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// indexByName maps benchmark name → result (last entry wins when a name
// repeats, matching go test's own "last run counts" convention).
func indexByName(doc Document) map[string]Benchmark {
	out := make(map[string]Benchmark, len(doc.Benchmarks))
	for _, b := range doc.Benchmarks {
		out[b.Name] = b
	}
	return out
}

// missingSide names which document dropped a gated benchmark.
func missingSide(okOld, okNew bool) string {
	switch {
	case !okOld && !okNew:
		return "both"
	case !okOld:
		return "the baseline"
	default:
		return "the fresh"
	}
}
