// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document on stdout — the format of the repo's
// committed BENCH_*.json baselines (`make bench` wires it up).
//
// It understands the standard benchmark line shape
//
//	BenchmarkName-8    10    123456 ns/op    42 B/op    7 allocs/op    3.14 custom-unit
//
// plus the goos/goarch/cpu/pkg header lines, and ignores everything else
// (PASS, ok, test log noise).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Document is the emitted file.
type Document struct {
	Label      string      `json:"label,omitempty"`
	Hardware   string      `json:"hardware,omitempty"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Date       string      `json:"date,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	label := flag.String("label", "", "free-form label recorded in the document")
	hardware := flag.String("hardware", "", "hardware note recorded in the document")
	flag.Parse()

	doc := Document{
		Label:    *label,
		Hardware: *hardware,
		Date:     time.Now().UTC().Format("2006-01-02"),
	}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				b.Package = pkg
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one result line; ok is false for lines that only
// look like results (e.g. a benchmark name echoed by -v logging).
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Metrics: map[string]float64{}}
	if name, procs, ok := strings.Cut(b.Name, "-"); ok {
		if p, err := strconv.Atoi(procs); err == nil {
			b.Name, b.Procs = name, p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	// The rest alternate value/unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
