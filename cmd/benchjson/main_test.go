package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkHeadline-8   \t       5\t 229537616 ns/op\t       200.6 sbc-func/min\t         5.457 gain-x")
	if !ok {
		t.Fatal("line rejected")
	}
	if b.Name != "BenchmarkHeadline" || b.Procs != 8 || b.Iterations != 5 {
		t.Fatalf("parsed %+v", b)
	}
	for unit, want := range map[string]float64{"ns/op": 229537616, "sbc-func/min": 200.6, "gain-x": 5.457} {
		if got := b.Metrics[unit]; got != want {
			t.Fatalf("metric %s = %v, want %v", unit, got, want)
		}
	}
}

func TestParseBenchLineNoProcsSuffix(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkFig1BootStages \t 1000\t 1234 ns/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if b.Name != "BenchmarkFig1BootStages" || b.Procs != 0 {
		t.Fatalf("parsed %+v", b)
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"BenchmarkHeadline",
		"BenchmarkHeadline-8   logs something",
		"Benchmark name only",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Fatalf("accepted noise line %q", line)
		}
	}
}
