package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkHeadline-8   \t       5\t 229537616 ns/op\t       200.6 sbc-func/min\t         5.457 gain-x")
	if !ok {
		t.Fatal("line rejected")
	}
	if b.Name != "BenchmarkHeadline" || b.Procs != 8 || b.Iterations != 5 {
		t.Fatalf("parsed %+v", b)
	}
	for unit, want := range map[string]float64{"ns/op": 229537616, "sbc-func/min": 200.6, "gain-x": 5.457} {
		if got := b.Metrics[unit]; got != want {
			t.Fatalf("metric %s = %v, want %v", unit, got, want)
		}
	}
}

func TestParseBenchLineNoProcsSuffix(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkFig1BootStages \t 1000\t 1234 ns/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if b.Name != "BenchmarkFig1BootStages" || b.Procs != 0 {
		t.Fatalf("parsed %+v", b)
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"BenchmarkHeadline",
		"BenchmarkHeadline-8   logs something",
		"Benchmark name only",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Fatalf("accepted noise line %q", line)
		}
	}
}

func writeDoc(t *testing.T, name string, doc Document) string {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func bench(name string, ns, allocs float64) Benchmark {
	return Benchmark{Name: name, Iterations: 1, Metrics: map[string]float64{"ns/op": ns, "allocs/op": allocs}}
}

func TestDiffPassesWithinThreshold(t *testing.T) {
	old := writeDoc(t, "old.json", Document{Label: "pr3", Benchmarks: []Benchmark{
		bench("BenchmarkLiveInvocation", 148496, 189),
		bench("BenchmarkSimulatorEventRate", 40874, 17),
	}})
	fresh := writeDoc(t, "new.json", Document{Benchmarks: []Benchmark{
		bench("BenchmarkLiveInvocation", 36528, 34),     // big improvement
		bench("BenchmarkSimulatorEventRate", 44000, 17), // +7.6%, inside +20%
	}})
	var out strings.Builder
	if err := runDiff(old, fresh, "", 20, &out); err != nil {
		t.Fatalf("gate failed on an improvement: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "gate passed") {
		t.Fatalf("no pass line in:\n%s", out.String())
	}
}

func TestDiffFailsOnRegression(t *testing.T) {
	old := writeDoc(t, "old.json", Document{Benchmarks: []Benchmark{
		bench("BenchmarkLiveInvocation", 100, 10),
	}})
	fresh := writeDoc(t, "new.json", Document{Benchmarks: []Benchmark{
		bench("BenchmarkLiveInvocation", 130, 10), // +30% ns/op
	}})
	var out strings.Builder
	err := runDiff(old, fresh, "BenchmarkLiveInvocation", 20, &out)
	if err == nil {
		t.Fatalf("a +30%% ns/op regression passed the gate:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "ns/op regressed") {
		t.Fatalf("unexpected gate error: %v", err)
	}
}

func TestDiffFailsOnAllocRegression(t *testing.T) {
	old := writeDoc(t, "old.json", Document{Benchmarks: []Benchmark{
		bench("BenchmarkLiveInvocation", 100, 10),
	}})
	fresh := writeDoc(t, "new.json", Document{Benchmarks: []Benchmark{
		bench("BenchmarkLiveInvocation", 100, 13), // +30% allocs/op
	}})
	if err := runDiff(old, fresh, "", 20, &strings.Builder{}); err == nil {
		t.Fatal("a +30% allocs/op regression passed the gate")
	}
}

func TestDiffPinnedUnitGatesOnlyThatUnit(t *testing.T) {
	old := writeDoc(t, "old.json", Document{Benchmarks: []Benchmark{
		bench("BenchmarkShardedRackScale", 6e10, 3e7),
		bench("BenchmarkLiveInvocation", 100, 10),
	}})
	fresh := writeDoc(t, "new.json", Document{Benchmarks: []Benchmark{
		bench("BenchmarkShardedRackScale", 9e10, 3e7), // +50% ns/op, allocs flat
		bench("BenchmarkLiveInvocation", 100, 10),
	}})
	gate := "BenchmarkLiveInvocation,BenchmarkShardedRackScale:allocs/op"
	var out strings.Builder
	if err := runDiff(old, fresh, gate, 20, &out); err != nil {
		t.Fatalf("ns/op noise failed an allocs/op-pinned gate: %v\n%s", err, out.String())
	}
	// The pinned unit itself must still be enforced.
	worse := writeDoc(t, "worse.json", Document{Benchmarks: []Benchmark{
		bench("BenchmarkShardedRackScale", 6e10, 4.5e7), // +50% allocs/op
		bench("BenchmarkLiveInvocation", 100, 10),
	}})
	err := runDiff(old, worse, gate, 20, &strings.Builder{})
	if err == nil {
		t.Fatal("a +50% allocs/op regression passed an allocs/op-pinned gate")
	}
	if !strings.Contains(err.Error(), "allocs/op regressed") {
		t.Fatalf("unexpected gate error: %v", err)
	}
}

func TestDiffFailsWhenGatedBenchmarkVanishes(t *testing.T) {
	old := writeDoc(t, "old.json", Document{Benchmarks: []Benchmark{
		bench("BenchmarkLiveInvocation", 100, 10),
		bench("BenchmarkRackScale10K", 3e9, 100),
	}})
	fresh := writeDoc(t, "new.json", Document{Benchmarks: []Benchmark{
		bench("BenchmarkLiveInvocation", 90, 9),
	}})
	err := runDiff(old, fresh, "BenchmarkLiveInvocation,BenchmarkRackScale10K", 20, &strings.Builder{})
	if err == nil {
		t.Fatal("a vanished gated benchmark passed the gate")
	}
	if !strings.Contains(err.Error(), "missing") {
		t.Fatalf("unexpected gate error: %v", err)
	}
}
