// Command microfaas-live boots a complete in-process MicroFaaS deployment
// — backing services, real TCP workers, the orchestration platform — and
// either serves it as an HTTP FaaS gateway or drives a benchmark load
// through it.
//
// Serve mode (default): expose the gateway until interrupted.
//
//	microfaas-live -listen 127.0.0.1:8080
//
// Load mode: drive -jobs invocations of the full suite, print per-function
// statistics and the cluster's energy accounting, then exit.
//
//	microfaas-live -jobs 170 -boot-delay 100ms
//
// Dynamic power management (the MicroFaaS power manager) is opt-in:
//
//	microfaas-live -power-idle 30s -power-cap 12 -policy energy-aware
//
// Predictive mode layers an arrival-rate forecaster on top of the power
// manager, pre-warming workers ahead of forecast demand (serve mode;
// inspect it with `faasctl forecast`):
//
//	microfaas-live -power-idle 30s -policy energy-aware -predict
//
// Serve mode scrapes cluster telemetry into an embedded time-series
// store (backing /query, /slo, and /alerts plus `faasctl watch`) and can
// evaluate SLO burn-rate rules against it:
//
//	microfaas-live -slo examples/slo/rules.json -scrape-interval 2s
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"microfaas/internal/cluster"
	"microfaas/internal/core"
	"microfaas/internal/forecast"
	"microfaas/internal/gateway"
	"microfaas/internal/power"
	"microfaas/internal/powermgr"
	"microfaas/internal/replay"
	"microfaas/internal/telemetry"
	"microfaas/internal/tracing"
	"microfaas/internal/tsdb"
	"microfaas/internal/workload"
)

func main() {
	workers := flag.Int("workers", 4, "live worker count")
	listen := flag.String("listen", "127.0.0.1:8080", "gateway listen address (serve mode)")
	jobs := flag.Int("jobs", 0, "run N invocations and exit (load mode; 0 = serve mode)")
	replayPath := flag.String("replay", "", "replay an at_ms,function CSV trace and exit (replay mode)")
	speedup := flag.Float64("speedup", 1, "time compression for -replay (e.g. 60 = 1 virtual minute per second)")
	bootDelay := flag.Duration("boot-delay", 0, "simulated worker reboot before each job (BeagleBone: 1.51s)")
	seed := flag.Int64("seed", 1, "assignment seed")
	jobTimeout := flag.Duration("job-timeout", 0, "per-attempt invocation deadline enforced by the OP (0 = none)")
	maxAttempts := flag.Int("max-attempts", 1, "attempts per invocation before its failure is final")
	retryBase := flag.Duration("retry-base", 0, "base delay for exponential retry backoff (0 = immediate re-queue)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive failures before a worker's circuit breaker opens (0 = disabled)")
	breakerProbe := flag.Duration("breaker-probe", 30*time.Second, "how long an open breaker waits before probing the worker again")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "in serve mode, how long shutdown waits for in-flight jobs")
	traceSample := flag.Float64("trace-sample", 0, "head-sampling rate for per-invocation tracing, 0..1 (1 = every invocation; errors and >30s outliers always kept; 0 = tracing off)")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof profiling handlers under /debug/pprof/ on the gateway")
	powerIdle := flag.Duration("power-idle", 0, "enable dynamic power management: power-gate workers idle this long (0 = static power, every worker always on)")
	powerCap := flag.Float64("power-cap", 0, "cluster power budget in watts; bounds simultaneously powered workers (0 = no cap; requires -power-idle)")
	powerMinUp := flag.Duration("power-minup", 0, "hysteresis: minimum time a woken worker stays powered (0 = powermgr default; requires -power-idle)")
	policyFlag := flag.String("policy", "", "assignment policy: round-robin, random, least-loaded, or energy-aware (default: platform default; energy-aware pairs with -power-idle)")
	sloPath := flag.String("slo", "", "SLO burn-rate rules (JSON) evaluated on every scrape in serve mode")
	scrapeEvery := flag.Duration("scrape-interval", time.Second, "telemetry scrape cadence for the embedded time-series store (serve mode)")
	predict := flag.Bool("predict", false, "predictive power management: forecast arrival rates and steer the warm pool ahead of demand (serve mode; requires -power-idle)")
	flag.Parse()

	opts := cluster.LiveOptions{
		Workers:          *workers,
		BootDelay:        *bootDelay,
		Seed:             *seed,
		Meter:            true,
		JobTimeout:       *jobTimeout,
		MaxAttempts:      *maxAttempts,
		RetryBase:        *retryBase,
		BreakerThreshold: *breakerThreshold,
		BreakerProbe:     *breakerProbe,
		Telemetry:        telemetry.New(),
	}
	if *policyFlag != "" {
		pol, err := core.ParsePolicy(*policyFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "microfaas-live:", err)
			os.Exit(2)
		}
		opts.Policy = pol
	}
	if *powerIdle > 0 {
		opts.Power = &powermgr.Policy{
			IdleTimeout: *powerIdle,
			MinUp:       *powerMinUp,
			CapW:        power.Watts(*powerCap),
		}
	} else if *powerCap != 0 || *powerMinUp != 0 {
		fmt.Fprintln(os.Stderr, "microfaas-live: -power-cap and -power-minup require -power-idle")
		os.Exit(2)
	}
	if *predict {
		if opts.Power == nil {
			fmt.Fprintln(os.Stderr, "microfaas-live: -predict requires -power-idle")
			os.Exit(2)
		}
		// Forecast-driven floors make the reactive idle timeout a safety
		// net rather than the only trim path; damp pre-sleep so a
		// momentary forecast dip doesn't cycle nodes the next burst
		// re-boots. These mirror the tuned predictive experiment arm.
		opts.Power.PreSleepSlack = 1
		opts.Power.PreSleepSlackFrac = 0.5
		opts.Power.PreSleepMax = 1
		opts.Power.PreSleepDebounce = 1
	}
	if *traceSample > 0 {
		// Flag semantics: 0 disables tracing outright. Internally a zero
		// SampleRate means "sample everything", so pass the rate through
		// only once we know tracing is on.
		opts.Tracer = tracing.NewWithConfig(tracing.Config{
			Seed:          *seed,
			SampleRate:    *traceSample,
			SlowThreshold: 30 * time.Second,
		})
	}
	var slo []tsdb.Rule
	if *sloPath != "" {
		var err error
		if slo, err = tsdb.LoadRules(*sloPath); err != nil {
			fmt.Fprintln(os.Stderr, "microfaas-live:", err)
			os.Exit(2)
		}
	}
	if err := run(opts, *listen, *jobs, *replayPath, *speedup, *seed, *drainTimeout, *pprofFlag, slo, *scrapeEvery, *predict); err != nil {
		fmt.Fprintln(os.Stderr, "microfaas-live:", err)
		os.Exit(1)
	}
}

func run(opts cluster.LiveOptions, listen string, jobs int, replayPath string, speedup float64, seed int64, drainTimeout time.Duration, pprofOn bool, slo []tsdb.Rule, scrapeEvery time.Duration, predict bool) error {
	l, err := cluster.StartLive(opts)
	if err != nil {
		return err
	}
	defer l.Close()
	fmt.Printf("live cluster up: %d workers, services kv=%s sql=%s cos=%s mq=%s\n",
		len(l.Workers), l.Env.KVStoreAddr, l.Env.SQLStoreAddr, l.Env.ObjStoreAddr, l.Env.MQAddr)

	if replayPath != "" {
		return replayMode(os.Stdout, l, replayPath, speedup, seed)
	}
	if jobs > 0 {
		return loadMode(os.Stdout, l, jobs, seed)
	}
	return serveMode(l, listen, drainTimeout, opts.Tracer, pprofOn, slo, scrapeEvery, predict)
}

// replayMode replays a CSV trace against the live cluster, compressing
// offsets by speedup, and prints the same report as load mode.
func replayMode(w io.Writer, l *cluster.Live, path string, speedup float64, seed int64) error {
	if speedup <= 0 {
		return fmt.Errorf("speedup must be positive, got %v", speedup)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	sched, err := replay.ReadCSV(f)
	f.Close() //nolint:errcheck // read-only
	if err != nil {
		return err
	}
	for i := range sched {
		sched[i].At = time.Duration(float64(sched[i].At) / speedup)
	}
	// Trace functions carry no arguments; generate realistic ones per
	// submission by wrapping the orchestrator.
	rng := rand.New(rand.NewSource(seed))
	start := l.Runtime.Now()
	n, err := replay.Feed(l.Runtime, &argFiller{orch: l.Orch, rng: rng}, sched)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "replaying %d invocations over %v (%.0fx compression)\n",
		n, sched.Duration().Round(time.Millisecond), speedup)
	// Wait out the schedule. Quiesce alone is racy at the tail: the final
	// timer may not have fired when the queue momentarily drains, so also
	// wait until every traced invocation has been recorded.
	time.Sleep(sched.Duration())
	for l.Orch.Collector().Len() < n {
		time.Sleep(10 * time.Millisecond)
	}
	l.Orch.Quiesce()
	printReport(w, l, n, l.Runtime.Now()-start)
	if errs := l.Orch.Collector().ErrorCount(); errs > 0 {
		return fmt.Errorf("%d invocations failed", errs)
	}
	return nil
}

// argFiller adapts the orchestrator to replay.Submitter, generating
// arguments for each traced function on the fly. Replay timers fire on
// independent goroutines, so the shared random source is guarded.
type argFiller struct {
	orch *core.Orchestrator
	mu   sync.Mutex
	rng  *rand.Rand
}

func (a *argFiller) Submit(function string, _ []byte) int64 {
	var args []byte
	if f, err := workload.Get(function); err == nil {
		a.mu.Lock()
		args = f.GenArgs(a.rng)
		a.mu.Unlock()
	}
	return a.orch.Submit(function, args)
}

func serveMode(l *cluster.Live, listen string, drainTimeout time.Duration, tracer *tracing.Tracer, pprofOn bool, slo []tsdb.Rule, scrapeEvery time.Duration, predict bool) error {
	// Serve mode carries the embedded time-series store: it scrapes the
	// cluster's registry on the wall clock (the sim scrapes on the
	// aggregator tick instead) and backs /query, /slo, and /alerts.
	store := tsdb.New(tsdb.Config{Tracer: tracer})
	if err := store.SetRules(slo); err != nil {
		return err
	}
	store.AddSource("", l.Telemetry.Registry())
	stopScrape := store.Start(l.Runtime.Now, scrapeEvery)
	defer stopScrape()
	var ctl *forecast.Controller
	if predict {
		// The predictor ticks on the scrape cadence so every tick sees a
		// fresh arrival-rate sample; it steers the same power manager the
		// reactive idle timeout owns.
		var err error
		ctl, err = forecast.NewController(forecast.ControllerConfig{
			Store:   store,
			Manager: l.PowerMgr,
			Policy: forecast.Policy{
				Tick:       scrapeEvery,
				MaxWorkers: len(l.Workers),
				Spare:      1,
			},
			Telemetry: l.Telemetry,
		})
		if err != nil {
			return err
		}
		stopForecast := ctl.Start(l.Runtime, scrapeEvery)
		defer stopForecast()
	}
	gw, err := gateway.NewWithOptions(l.Orch, gateway.Options{
		Timeout:     5 * time.Minute,
		Mode:        "live",
		Telemetry:   l.Telemetry,
		Tracer:      tracer,
		EnablePprof: pprofOn,
		TSDB:        store,
		Forecast:    ctl,
	})
	if err != nil {
		return err
	}
	addr, err := gw.Listen(listen)
	if err != nil {
		return err
	}
	defer gw.Close()
	fmt.Printf("gateway listening on http://%s — try:\n", addr)
	fmt.Printf("  faasctl -gateway %s functions\n", addr)
	fmt.Printf("  faasctl -gateway %s invoke CascSHA '{\"rounds\":1000,\"seed\":\"hi\"}'\n", addr)
	fmt.Printf("  faasctl -gateway %s top\n", addr)
	fmt.Printf("  faasctl -gateway %s watch microfaas_jobs_submitted_total\n", addr)
	if len(slo) > 0 {
		fmt.Printf("  faasctl -gateway %s slo\n", addr)
		fmt.Printf("  faasctl -gateway %s alerts\n", addr)
	}
	if l.PowerMgr != nil {
		fmt.Printf("  faasctl -gateway %s power\n", addr)
	}
	if ctl != nil {
		fmt.Printf("  faasctl -gateway %s forecast\n", addr)
	}
	fmt.Printf("  curl http://%s/metrics\n", addr)
	if tracer != nil {
		fmt.Printf("  faasctl -gateway %s trace --slowest 5\n", addr)
	}
	if pprofOn {
		fmt.Printf("  go tool pprof http://%s/debug/pprof/profile?seconds=10\n", addr)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// Graceful drain: refuse new submissions, give in-flight work up to
	// drainTimeout to finish, report anything abandoned.
	fmt.Printf("\ndraining (up to %v for in-flight jobs)\n", drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	abandoned := l.Orch.Drain(ctx)
	if len(abandoned) > 0 {
		fmt.Printf("drain deadline hit: %d queued jobs abandoned\n", len(abandoned))
	}
	fmt.Println("shutting down")
	return nil
}

func loadMode(w io.Writer, l *cluster.Live, jobs int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	fns := workload.All()
	start := l.Runtime.Now()
	for i := 0; i < jobs; i++ {
		f := fns[i%len(fns)]
		l.Orch.Submit(f.Name, f.GenArgs(rng))
	}
	l.Orch.Quiesce()
	printReport(w, l, jobs, l.Runtime.Now()-start)
	if errs := l.Orch.Collector().ErrorCount(); errs > 0 {
		return fmt.Errorf("%d invocations failed", errs)
	}
	return nil
}

// printReport renders per-function statistics and cluster totals.
func printReport(w io.Writer, l *cluster.Live, jobs int, elapsed time.Duration) {
	coll := l.Orch.Collector()
	fmt.Fprintf(w, "\n%-12s %6s %10s %12s %10s %10s\n",
		"function", "count", "errors", "mean-exec", "mean-ovh", "p95-total")
	for _, st := range coll.ByFunction() {
		fmt.Fprintf(w, "%-12s %6d %10d %12s %10s %10s\n",
			st.Function, st.Count, st.Errors,
			st.MeanExec.Round(time.Microsecond),
			st.MeanOverhead.Round(time.Microsecond),
			st.P95Total.Round(time.Microsecond))
	}
	completed := coll.Len() - coll.ErrorCount()
	if completed > 0 {
		if h, err := coll.LatencyHistogram(100*time.Microsecond, 10*time.Second, 14); err == nil {
			fmt.Fprintln(w, "\nend-to-end latency distribution:")
			h.Write(w) //nolint:errcheck
			fmt.Fprintf(w, "p50 ≤ %v, p95 ≤ %v\n",
				h.Quantile(0.5).Round(time.Microsecond),
				h.Quantile(0.95).Round(time.Microsecond))
		}
	}
	fmt.Fprintf(w, "\ncompleted %d/%d in %v (%.1f func/min)\n",
		completed, jobs, elapsed.Round(time.Millisecond),
		float64(completed)/elapsed.Minutes())
	if l.Meter != nil && completed > 0 {
		energy := float64(l.Meter.TotalEnergy(l.Runtime.Now()))
		fmt.Fprintf(w, "modelled energy: %.2f J total, %.3f J/function\n",
			energy, energy/float64(completed))
	}
}
