package main

import (
	"os"
	"strings"
	"testing"
	"time"

	"microfaas/internal/cluster"
)

func TestLoadModeRunsFullSuite(t *testing.T) {
	l, err := cluster.StartLive(cluster.LiveOptions{Workers: 3, Seed: 2, Meter: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var sb strings.Builder
	if err := loadMode(&sb, l, 34, 2); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"CascSHA", "RedisInsert", "completed 34/34", "modelled energy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("load output missing %q:\n%s", want, out)
		}
	}
}

func TestLoadModeReportsWorkerBootDelay(t *testing.T) {
	l, err := cluster.StartLive(cluster.LiveOptions{Workers: 2, Seed: 2, BootDelay: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var sb strings.Builder
	if err := loadMode(&sb, l, 4, 2); err != nil {
		t.Fatal(err)
	}
	// Every record must include the reboot pause.
	for _, r := range l.Orch.Collector().Records() {
		if r.Boot < 20*time.Millisecond {
			t.Fatalf("%s boot = %v, want >= 20ms", r.Function, r.Boot)
		}
	}
}

func TestReplayModeDrivesTrace(t *testing.T) {
	l, err := cluster.StartLive(cluster.LiveOptions{Workers: 2, Seed: 3, Meter: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	path := t.TempDir() + "/trace.csv"
	trace := "at_ms,function\n0,CascSHA\n40,RedisInsert\n90,RegExMatch\n150,MQProduce\n"
	if err := os.WriteFile(path, []byte(trace), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := replayMode(&sb, l, path, 2, 3); err != nil {
		t.Fatal(err)
	}
	if got := l.Orch.Collector().Len(); got != 4 {
		t.Fatalf("replayed %d of 4 invocations", got)
	}
	if !strings.Contains(sb.String(), "completed 4/4") {
		t.Fatalf("report:\n%s", sb.String())
	}
}

func TestReplayModeValidation(t *testing.T) {
	l, err := cluster.StartLive(cluster.LiveOptions{Workers: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var sb strings.Builder
	if err := replayMode(&sb, l, "/nonexistent/trace.csv", 1, 1); err == nil {
		t.Fatal("missing trace accepted")
	}
	if err := replayMode(&sb, l, "/dev/null", 0, 1); err == nil {
		t.Fatal("zero speedup accepted")
	}
}
