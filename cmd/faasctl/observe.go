package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"
)

// sparkBlocks are the eight levels a sparkline cell can take.
var sparkBlocks = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values as a fixed-height block-character strip,
// scaled to the series' own min..max (a flat series renders as all-min).
func sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkBlocks)-1))
		}
		b.WriteRune(sparkBlocks[idx])
	}
	return b.String()
}

// querySeries mirrors one /query series result.
type querySeries struct {
	Labels map[string]string `json:"labels"`
	Value  float64           `json:"value"`
	Points []struct {
		AtMs  float64 `json:"at_ms"`
		Value float64 `json:"value"`
	} `json:"points"`
}

// fetchQuery runs one /query against every configured gateway and
// concatenates the series (shard labels make them distinct; with
// several gateways each contributes its own shards).
func (c *client) fetchQuery(params url.Values) ([]querySeries, error) {
	var all []querySeries
	for _, base := range c.allBases() {
		resp, err := c.http.Get(base + "/query?" + params.Encode())
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			return nil, fmt.Errorf("%s/query returned %s: %s", base, resp.Status, strings.TrimSpace(string(body)))
		}
		var reply struct {
			Series []querySeries `json:"series"`
		}
		err = json.NewDecoder(resp.Body).Decode(&reply)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		all = append(all, reply.Series...)
	}
	return all, nil
}

// labelsColumn renders a label set as sorted k=v pairs for table rows.
func labelsColumn(labels map[string]string) string {
	if len(labels) == 0 {
		return "(cluster)"
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+labels[k])
	}
	return strings.Join(parts, ",")
}

// watch renders a per-label-set sparkline table for one metric from the
// gateway's embedded time-series store, refreshing every interval like
// top. args: <metric> [op] — op defaults to "last" (use "rate" for
// counters).
func (c *client) watch(args []string, interval time.Duration, iterations int) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: watch <metric> [last|avg|min|max|increase|rate]")
	}
	metric := args[0]
	op := "last"
	if len(args) >= 2 {
		op = args[1]
	}
	params := url.Values{}
	params.Set("metric", metric)
	params.Set("op", op)
	params.Set("range", "1")
	// The sparkline plots the raw window; ask for enough lookback to
	// fill a strip at the refresh cadence.
	params.Set("window", (40 * interval).String())
	for i := 0; iterations <= 0 || i < iterations; i++ {
		if i > 0 {
			time.Sleep(interval)
			fmt.Fprintln(c.out)
		}
		series, err := c.fetchQuery(params)
		if err != nil {
			return err
		}
		if len(series) == 0 {
			fmt.Fprintf(c.out, "%s: no series (metric unseen, or store not scraping yet)\n", metric)
			continue
		}
		fmt.Fprintf(c.out, "%s (%s)\n", metric, op)
		for _, sr := range series {
			vals := make([]float64, len(sr.Points))
			for j, p := range sr.Points {
				vals[j] = p.Value
			}
			fmt.Fprintf(c.out, "  %-40s %12.3f  %s\n", labelsColumn(sr.Labels), sr.Value, sparkline(vals))
		}
	}
	return nil
}

// sloTable renders GET /slo as one row per burn-rate page.
func (c *client) sloTable() error {
	resp, err := c.http.Get(c.base + "/slo")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return c.prettyPrint(resp.Body)
	}
	var rules []struct {
		Rule struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
		} `json:"rule"`
		Pages []struct {
			Page        string  `json:"page"`
			ShortWindow string  `json:"short_window"`
			LongWindow  string  `json:"long_window"`
			Threshold   float64 `json:"threshold"`
			ShortBurn   float64 `json:"short_burn"`
			LongBurn    float64 `json:"long_burn"`
			Firing      bool    `json:"firing"`
		} `json:"pages"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rules); err != nil {
		return err
	}
	if len(rules) == 0 {
		fmt.Fprintln(c.out, "no SLO rules configured")
		return nil
	}
	fmt.Fprintf(c.out, "%-20s %-14s %-5s %-10s %10s %10s %10s %7s\n",
		"rule", "kind", "page", "windows", "short-burn", "long-burn", "threshold", "state")
	for _, r := range rules {
		for _, p := range r.Pages {
			state := "ok"
			if p.Firing {
				state = "FIRING"
			}
			fmt.Fprintf(c.out, "%-20s %-14s %-5s %-10s %10.2f %10.2f %10.2f %7s\n",
				r.Rule.Name, r.Rule.Kind, p.Page, p.ShortWindow+"/"+p.LongWindow,
				p.ShortBurn, p.LongBurn, p.Threshold, state)
		}
	}
	return nil
}

// alertsTable renders GET /alerts: firing pages first, then the
// transition history (oldest first).
func (c *client) alertsTable() error {
	resp, err := c.http.Get(c.base + "/alerts")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return c.prettyPrint(resp.Body)
	}
	var reply struct {
		Active []struct {
			Rule      string  `json:"rule"`
			Page      string  `json:"page"`
			SinceMs   float64 `json:"since_ms"`
			ShortBurn float64 `json:"short_burn"`
			LongBurn  float64 `json:"long_burn"`
			Threshold float64 `json:"threshold"`
		} `json:"active"`
		History []struct {
			AtMs     float64 `json:"at_ms"`
			Type     string  `json:"type"`
			Function string  `json:"function"`
			Worker   string  `json:"worker"`
			Detail   string  `json:"detail"`
		} `json:"history"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return err
	}
	if len(reply.Active) == 0 {
		fmt.Fprintln(c.out, "no alerts firing")
	} else {
		fmt.Fprintf(c.out, "%-20s %-5s %12s %10s %10s %10s\n",
			"rule", "page", "since", "short-burn", "long-burn", "threshold")
		for _, a := range reply.Active {
			fmt.Fprintf(c.out, "%-20s %-5s %12s %10.2f %10.2f %10.2f\n",
				a.Rule, a.Page, fmtMs(a.SinceMs), a.ShortBurn, a.LongBurn, a.Threshold)
		}
	}
	if len(reply.History) > 0 {
		fmt.Fprintf(c.out, "history:\n")
		for _, ev := range reply.History {
			fmt.Fprintf(c.out, "  %12s %-14s %-20s %-5s %s\n",
				fmtMs(ev.AtMs), ev.Type, ev.Function, ev.Worker, ev.Detail)
		}
	}
	return nil
}

// topFrame is one machine-readable dashboard frame (`top -json`).
type topFrame struct {
	Invocations float64           `json:"invocations"`
	Pending     float64           `json:"pending"`
	ThroughputM float64           `json:"throughput_per_min,omitempty"`
	P50S        float64           `json:"latency_p50_s"`
	P99S        float64           `json:"latency_p99_s"`
	PowerW      float64           `json:"power_w,omitempty"`
	EnergyJ     float64           `json:"energy_j,omitempty"`
	Stolen      float64           `json:"stolen,omitempty"`
	Functions   []topFunctionJSON `json:"functions"`
}

// topFunctionJSON is one function's row inside a topFrame.
type topFunctionJSON struct {
	Function string  `json:"function"`
	OK       float64 `json:"ok"`
	Errors   float64 `json:"errors"`
	JoulesPF float64 `json:"joules_per_function,omitempty"`
}
