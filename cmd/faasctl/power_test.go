package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"microfaas/internal/cluster"
	"microfaas/internal/gateway"
	"microfaas/internal/powermgr"
	"microfaas/internal/telemetry"
)

// startManagedStack boots a power-managed live cluster (telemetry on) with
// a gateway and aims a client at it.
func startManagedStack(t *testing.T) (*client, *strings.Builder) {
	t.Helper()
	tel := telemetry.New()
	l, err := cluster.StartLive(cluster.LiveOptions{
		Workers:   2,
		Seed:      4,
		Meter:     true,
		Telemetry: tel,
		Power:     &powermgr.Policy{IdleTimeout: time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	gw, err := gateway.NewWithOptions(l.Orch, gateway.Options{Timeout: 30 * time.Second, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })
	var sb strings.Builder
	return &client{
		base:       "http://" + addr,
		http:       &http.Client{Timeout: 30 * time.Second},
		out:        &sb,
		interval:   10 * time.Millisecond,
		iterations: 1,
	}, &sb
}

func TestPowerCommand(t *testing.T) {
	c, out := startManagedStack(t)
	if err := c.run([]string{"power"}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{`"powered"`, `"nodes"`, `"live-000"`, `"off"`} {
		if !strings.Contains(got, want) {
			t.Fatalf("power output missing %s:\n%s", want, got)
		}
	}
	out.Reset()
	if err := c.run([]string{"power", "cap", "1.96"}); err != nil {
		t.Fatal(err)
	}
	got = out.String()
	if !strings.Contains(got, `"cap_w": 1.96`) || !strings.Contains(got, `"max_powered": 1`) {
		t.Fatalf("power cap output = %s", got)
	}
}

func TestPowerCommandUsage(t *testing.T) {
	c, _ := startManagedStack(t)
	if err := c.run([]string{"power", "cap"}); err == nil {
		t.Fatal("power cap without a wattage accepted")
	}
	if err := c.run([]string{"power", "cap", "lots"}); err == nil {
		t.Fatal("non-numeric wattage accepted")
	}
	if err := c.run([]string{"power", "cap", "-2"}); err == nil {
		t.Fatal("negative wattage accepted by the gateway")
	}
}

// TestTopWorkerRowsFromMetricsSnapshot pins the bugfix for stale top rows:
// the per-worker busy/queue/power columns must come from the /metrics
// snapshot, not from a second /workers fetch that races it. The fake
// gateway serves metrics that say w0 is busy with three jobs queued while
// its /workers endpoint still claims the worker is idle — top must trust
// the metrics.
func TestTopWorkerRowsFromMetricsSnapshot(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `microfaas_jobs_pending 3
microfaas_function_invocations_total{function="CascSHA",result="ok"} 1
microfaas_worker_busy{worker="w0"} 1
microfaas_worker_busy{worker="w1"} 0
microfaas_queue_depth{worker="w0"} 3
microfaas_queue_depth{worker="w1"} 0
microfaas_worker_powered{worker="w0"} 1
microfaas_worker_powered{worker="w1"} 0
`)
	})
	mux.HandleFunc("/workers", func(w http.ResponseWriter, r *http.Request) {
		// Stale view: both workers idle with empty queues.
		fmt.Fprint(w, `[{"id":"w0","breaker":"closed","queue_depth":0,"busy":false},
			{"id":"w1","breaker":"open","queue_depth":9,"busy":true}]`)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	var sb strings.Builder
	c := &client{base: srv.URL, http: srv.Client(), out: &sb, iterations: 1}
	if err := c.run([]string{"top"}); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	// Gauge truth wins: w0 is busy with q3 and powered on, w1 idle with q0
	// and powered off — regardless of what /workers claimed. Breaker state
	// is the one column /workers still provides.
	for _, want := range []string{"w0=closed,busy,on(q3)", "w1=open,off(q0)"} {
		if !strings.Contains(got, want) {
			t.Fatalf("top output missing %q:\n%s", want, got)
		}
	}
}

// TestTopManagedCluster drives top end-to-end against a real managed
// cluster: the summary line must carry the powered gauge and every worker
// row an on/off power state.
func TestTopManagedCluster(t *testing.T) {
	c, out := startManagedStack(t)
	if err := c.run([]string{"invoke", "CascSHA", `{"rounds":2,"seed":"pmtop"}`}); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := c.run([]string{"top"}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"powered 1", "live-000", ",on(q", ",off(q"} {
		if !strings.Contains(got, want) {
			t.Fatalf("top output missing %q:\n%s", want, got)
		}
	}
}
