package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestForecastCommand renders the forecast table against a fake gateway
// snapshot.
func TestForecastCommand(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/forecast", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"mode":"predictive","error_ratio":0.135,"target_workers":4,
			"declining":true,"fallbacks_total":1,"ticks":1440,"tick_ms":5000,"horizon_ms":2000,
			"functions":[
				{"function":"CascSHA","rate_per_s":0.42,"ewma_per_s":0.40,"rate_ahead_per_s":0.38,"workers":1.61,"error_ratio":0.12},
				{"function":"AES128","rate_per_s":0.11,"ewma_per_s":0.10,"rate_ahead_per_s":0.09,"workers":0.38,"error_ratio":0.15}
			]}`)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	var sb strings.Builder
	c := &client{base: srv.URL, http: srv.Client(), out: &sb}
	if err := c.run([]string{"forecast"}); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"mode predictive", "target 4 workers", "trend declining",
		"error 0.135 (~6.8% MAPE)", "fallbacks 1",
		"CascSHA", "AES128", "0.420", "0.380",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("forecast output missing %q:\n%s", want, got)
		}
	}
}

// TestForecastCommandDisabled surfaces the gateway's 404 body when the
// cluster runs without a predictor.
func TestForecastCommandDisabled(t *testing.T) {
	c, out := startManagedStack(t)
	if err := c.run([]string{"forecast"}); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "prediction disabled") {
		t.Fatalf("forecast output = %s, want the 404 body", got)
	}
}
