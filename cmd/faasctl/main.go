// Command faasctl is the client CLI for a MicroFaaS gateway (see
// cmd/microfaas-live).
//
// Usage:
//
//	faasctl [-gateway host:port] functions
//	faasctl [-gateway host:port] workers [-v]
//	faasctl [-gateway host:port] stats
//	faasctl [-gateway host:port] invoke <function> [args-json]
//	faasctl [-gateway host:port] -async invoke <function> [args-json]
//	faasctl [-gateway host:port] job <id>
//	faasctl [-gateway host:port] top [-interval 2s] [-iterations 0]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

func main() {
	gatewayAddr := flag.String("gateway", "127.0.0.1:8080", "gateway address")
	timeout := flag.Duration("timeout", 5*time.Minute, "invocation timeout")
	async := flag.Bool("async", false, "submit invocations asynchronously (poll with 'job <id>')")
	interval := flag.Duration("interval", 2*time.Second, "top: refresh interval")
	iterations := flag.Int("iterations", 0, "top: stop after N refreshes (0 = until interrupted)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] functions|workers|stats|top|invoke <function> [args-json]\n", os.Args[0])
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	c := &client{base: "http://" + *gatewayAddr, http: &http.Client{Timeout: *timeout}, out: os.Stdout,
		async: *async, interval: *interval, iterations: *iterations}
	if err := c.run(flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "faasctl:", err)
		os.Exit(1)
	}
}

type client struct {
	base       string
	http       *http.Client
	out        io.Writer
	async      bool
	interval   time.Duration
	iterations int
}

func (c *client) run(args []string) error {
	switch args[0] {
	case "functions":
		return c.get("/functions")
	case "workers":
		if len(args) >= 2 && args[1] == "-v" {
			return c.get("/workers")
		}
		return c.workersTable()
	case "stats":
		return c.get("/stats")
	case "top":
		return c.top(c.interval, c.iterations)
	case "invoke":
		if len(args) < 2 {
			return fmt.Errorf("invoke requires a function name")
		}
		payload := "{}"
		if len(args) >= 3 {
			payload = args[2]
		}
		return c.invoke(args[1], payload)
	case "job":
		if len(args) < 2 {
			return fmt.Errorf("job requires an id")
		}
		return c.get("/jobs/" + args[1])
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// workersTable renders /workers as a compact health table; `workers -v`
// prints the raw JSON instead.
func (c *client) workersTable() error {
	resp, err := c.http.Get(c.base + "/workers")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return c.prettyPrint(resp.Body)
	}
	var workers []struct {
		ID         string `json:"id"`
		Breaker    string `json:"breaker"`
		Consec     int    `json:"consecutive_failures"`
		Completed  int64  `json:"completed"`
		Failed     int64  `json:"failed"`
		TimedOut   int64  `json:"timed_out"`
		QueueDepth int    `json:"queue_depth"`
		Busy       bool   `json:"busy"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&workers); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "%-12s %-9s %5s %9s %7s %9s %6s %5s\n",
		"worker", "breaker", "queue", "completed", "failed", "timed-out", "consec", "busy")
	for _, w := range workers {
		fmt.Fprintf(c.out, "%-12s %-9s %5d %9d %7d %9d %6d %5v\n",
			w.ID, w.Breaker, w.QueueDepth, w.Completed, w.Failed, w.TimedOut, w.Consec, w.Busy)
	}
	return nil
}

func (c *client) get(path string) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return c.prettyPrint(resp.Body)
}

func (c *client) invoke(function, argsJSON string) error {
	if !json.Valid([]byte(argsJSON)) {
		return fmt.Errorf("arguments are not valid JSON: %s", argsJSON)
	}
	body, err := json.Marshal(map[string]json.RawMessage{
		"function": json.RawMessage(fmt.Sprintf("%q", function)),
		"args":     json.RawMessage(argsJSON),
	})
	if err != nil {
		return err
	}
	url := c.base + "/invoke"
	okStatus := http.StatusOK
	if c.async {
		url += "?async=1"
		okStatus = http.StatusAccepted
	}
	resp, err := c.http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := c.prettyPrint(resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != okStatus {
		return fmt.Errorf("gateway returned %s", resp.Status)
	}
	return nil
}

// prettyPrint re-indents the gateway's JSON for terminal reading.
func (c *client) prettyPrint(r io.Reader) error {
	raw, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, bytes.TrimSpace(raw), "", "  "); err != nil {
		// Not JSON (e.g. a plain error page): print as-is.
		fmt.Fprintln(c.out, string(raw))
		return nil
	}
	fmt.Fprintln(c.out, buf.String())
	return nil
}
