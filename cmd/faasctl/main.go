// Command faasctl is the client CLI for a MicroFaaS gateway (see
// cmd/microfaas-live).
//
// Usage:
//
//	faasctl [-gateway host:port] functions
//	faasctl [-gateway host:port] workers [-v]
//	faasctl [-gateway host:port] stats
//	faasctl [-gateway host:port] shards
//	faasctl [-gateway host:port] shards drain <shard>
//	faasctl [-gateway host:port] shards join <shard>
//	faasctl [-gateway host:port] invoke <function> [args-json]
//	faasctl [-gateway host:port] -async invoke <function> [args-json]
//	faasctl [-gateway host:port] job <id>
//	faasctl [-gateway host:port] trace <job-id>
//	faasctl [-gateway host:port] trace --slowest <n>
//	faasctl [-gateway host:port] top [-interval 2s] [-iterations 0] [-once] [-json]
//	faasctl [-gateway host:port] watch [-interval 2s] [-once] <metric> [op]
//	faasctl [-gateway host:port] slo
//	faasctl [-gateway host:port] alerts
//	faasctl [-gateway host:port] power
//	faasctl [-gateway host:port] power cap <watts>
//	faasctl [-gateway host:port] forecast
//
// -gateway accepts a comma-separated address list; workers, top, and
// shards aggregate across every listed gateway (one dashboard over a
// multi-gateway sharded deployment), while the single-target commands
// (invoke, job, trace, stats, power) talk to the first address.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	gatewayAddr := flag.String("gateway", "127.0.0.1:8080", "gateway address, or a comma-separated list (workers/top/shards aggregate across all)")
	timeout := flag.Duration("timeout", 5*time.Minute, "invocation timeout")
	async := flag.Bool("async", false, "submit invocations asynchronously (poll with 'job <id>')")
	interval := flag.Duration("interval", 2*time.Second, "top/watch: refresh interval")
	iterations := flag.Int("iterations", 0, "top/watch: stop after N refreshes (0 = until interrupted)")
	once := flag.Bool("once", false, "top/watch: render a single frame and exit (same as -iterations 1)")
	jsonOut := flag.Bool("json", false, "top: emit one JSON object per frame instead of the table")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] functions|workers|stats|shards|top|watch|slo|alerts|power|forecast|trace|invoke <function> [args-json]\n", os.Args[0])
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	var bases []string
	for _, addr := range strings.Split(*gatewayAddr, ",") {
		if addr = strings.TrimSpace(addr); addr != "" {
			bases = append(bases, "http://"+addr)
		}
	}
	if len(bases) == 0 {
		fmt.Fprintln(os.Stderr, "faasctl: no gateway address")
		os.Exit(2)
	}
	iters := *iterations
	if *once {
		iters = 1
	}
	c := &client{base: bases[0], bases: bases, http: &http.Client{Timeout: *timeout}, out: os.Stdout,
		async: *async, interval: *interval, iterations: iters, jsonOut: *jsonOut}
	if err := c.run(flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "faasctl:", err)
		os.Exit(1)
	}
}

type client struct {
	base       string   // primary gateway, for single-target commands
	bases      []string // every gateway; empty means just base
	http       *http.Client
	out        io.Writer
	async      bool
	interval   time.Duration
	iterations int
	jsonOut    bool
}

// observeFlags parses flags appearing after the top/watch subcommand
// (`faasctl top -once -json`), mirroring the global pre-command
// spellings so both positions work; the standard flag parser stops at
// the first positional, so flags and positionals are re-fed until both
// are consumed. Returns the positional operands.
func (c *client) observeFlags(name string, args []string) ([]string, error) {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(c.out)
	interval := fs.Duration("interval", c.interval, "refresh interval")
	iterations := fs.Int("iterations", c.iterations, "stop after N refreshes (0 = until interrupted)")
	once := fs.Bool("once", false, "render a single frame and exit")
	jsonOut := fs.Bool("json", c.jsonOut, "emit one JSON object per frame")
	var pos []string
	for rest := args; len(rest) > 0; {
		if err := fs.Parse(rest); err != nil {
			return nil, err
		}
		rest = fs.Args()
		if len(rest) > 0 {
			pos = append(pos, rest[0])
			rest = rest[1:]
		}
	}
	c.interval = *interval
	c.iterations = *iterations
	if *once {
		c.iterations = 1
	}
	c.jsonOut = *jsonOut
	return pos, nil
}

// allBases returns every configured gateway base URL; clients built
// with only base get a one-element list.
func (c *client) allBases() []string {
	if len(c.bases) > 0 {
		return c.bases
	}
	return []string{c.base}
}

func (c *client) run(args []string) error {
	switch args[0] {
	case "functions":
		return c.get("/functions")
	case "workers":
		if len(args) >= 2 && args[1] == "-v" {
			return c.get("/workers")
		}
		return c.workersTable()
	case "stats":
		return c.get("/stats")
	case "shards":
		switch {
		case len(args) == 1:
			return c.shardsTable()
		case len(args) == 3 && (args[1] == "drain" || args[1] == "join"):
			return c.shardOp(args[1], args[2])
		default:
			return fmt.Errorf("usage: shards | shards drain <shard> | shards join <shard>")
		}
	case "top":
		rest, err := c.observeFlags("top", args[1:])
		if err != nil {
			return err
		}
		if len(rest) > 0 {
			return fmt.Errorf("top takes no arguments (got %q)", rest[0])
		}
		return c.top(c.interval, c.iterations)
	case "watch":
		rest, err := c.observeFlags("watch", args[1:])
		if err != nil {
			return err
		}
		return c.watch(rest, c.interval, c.iterations)
	case "slo":
		return c.sloTable()
	case "alerts":
		return c.alertsTable()
	case "power":
		switch {
		case len(args) == 1:
			return c.get("/power")
		case len(args) == 3 && args[1] == "cap":
			return c.powerCap(args[2])
		default:
			return fmt.Errorf("usage: power | power cap <watts>")
		}
	case "forecast":
		return c.forecastTable()
	case "invoke":
		if len(args) < 2 {
			return fmt.Errorf("invoke requires a function name")
		}
		payload := "{}"
		if len(args) >= 3 {
			payload = args[2]
		}
		return c.invoke(args[1], payload)
	case "job":
		if len(args) < 2 {
			return fmt.Errorf("job requires an id")
		}
		return c.get("/jobs/" + args[1])
	case "trace":
		return c.trace(args[1:])
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// traceSummary mirrors the gateway's /traces reply shape.
type traceSummary struct {
	Trace          string  `json:"trace"`
	Job            int64   `json:"job"`
	Function       string  `json:"function"`
	Worker         string  `json:"worker"`
	Attempts       int     `json:"attempts"`
	Error          string  `json:"error"`
	LatencyMs      float64 `json:"latency_ms"`
	UnattributedMs float64 `json:"unattributed_ms"`
	EnergyJ        float64 `json:"energy_j"`
	Phases         []struct {
		Phase      string  `json:"phase"`
		DurationMs float64 `json:"duration_ms"`
		EnergyJ    float64 `json:"energy_j"`
		Count      int     `json:"count"`
	} `json:"phases"`
}

// trace renders a phase-by-phase latency and energy breakdown for one
// job's trace (`trace <job-id>`) or the N slowest traces on record
// (`trace --slowest N`).
func (c *client) trace(args []string) error {
	var path string
	switch {
	case len(args) >= 2 && (args[0] == "--slowest" || args[0] == "-slowest"):
		path = "/traces?slowest=" + args[1]
	case len(args) == 1:
		path = "/traces?job=" + args[0]
	default:
		return fmt.Errorf("usage: trace <job-id> | trace --slowest <n>")
	}
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return c.prettyPrint(resp.Body)
	}
	var reply struct {
		Traces []traceSummary `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return err
	}
	if len(reply.Traces) == 0 {
		return fmt.Errorf("no trace on record (is tracing enabled, and was the job sampled?)")
	}
	for i, t := range reply.Traces {
		if i > 0 {
			fmt.Fprintln(c.out)
		}
		c.printTrace(t)
	}
	return nil
}

// printTrace writes one trace's breakdown table: per-phase duration and
// joules, then a total row that the phases (plus any unattributed gap)
// sum to.
func (c *client) printTrace(t traceSummary) {
	fmt.Fprintf(c.out, "trace %s  job %d  %s", t.Trace, t.Job, t.Function)
	if t.Worker != "" {
		fmt.Fprintf(c.out, "  worker %s", t.Worker)
	}
	fmt.Fprintf(c.out, "  attempts %d", t.Attempts)
	if t.Error != "" {
		fmt.Fprintf(c.out, "  error %q", t.Error)
	}
	fmt.Fprintln(c.out)
	fmt.Fprintf(c.out, "  %-10s %12s %12s %6s\n", "phase", "duration", "energy", "spans")
	for _, p := range t.Phases {
		fmt.Fprintf(c.out, "  %-10s %12s %12s %6d\n",
			p.Phase, fmtMs(p.DurationMs), fmtJoules(p.EnergyJ), p.Count)
	}
	if t.UnattributedMs > 0 {
		fmt.Fprintf(c.out, "  %-10s %12s %12s\n", "(unattrib)", fmtMs(t.UnattributedMs), fmtJoules(0))
	}
	fmt.Fprintf(c.out, "  %-10s %12s %12s\n", "total", fmtMs(t.LatencyMs), fmtJoules(t.EnergyJ))
}

// fmtMs renders fractional milliseconds as a duration string.
func fmtMs(v float64) string {
	return time.Duration(v * float64(time.Millisecond)).Round(time.Microsecond).String()
}

// fmtJoules renders an energy value; sub-millijoule noise reads as 0.
func fmtJoules(v float64) string {
	return fmt.Sprintf("%.3f J", v)
}

// workerRow mirrors one /workers entry (the shard label is empty on
// unsharded gateways).
type workerRow struct {
	ID         string `json:"id"`
	Shard      string `json:"shard"`
	Breaker    string `json:"breaker"`
	Consec     int    `json:"consecutive_failures"`
	Completed  int64  `json:"completed"`
	Failed     int64  `json:"failed"`
	TimedOut   int64  `json:"timed_out"`
	QueueDepth int    `json:"queue_depth"`
	Busy       bool   `json:"busy"`
}

// fetchWorkers concatenates /workers from every configured gateway.
func (c *client) fetchWorkers() ([]workerRow, error) {
	var all []workerRow
	for _, base := range c.allBases() {
		resp, err := c.http.Get(base + "/workers")
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			return nil, fmt.Errorf("%s/workers returned %s: %s", base, resp.Status, bytes.TrimSpace(body))
		}
		var page []workerRow
		err = json.NewDecoder(resp.Body).Decode(&page)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		all = append(all, page...)
	}
	return all, nil
}

// workersTable renders /workers — aggregated across every configured
// gateway — as a compact health table; `workers -v` prints the primary
// gateway's raw JSON instead.
func (c *client) workersTable() error {
	workers, err := c.fetchWorkers()
	if err != nil {
		return err
	}
	sharded := false
	for _, w := range workers {
		if w.Shard != "" {
			sharded = true
			break
		}
	}
	shardCol := ""
	if sharded {
		shardCol = fmt.Sprintf("%-10s ", "shard")
	}
	fmt.Fprintf(c.out, "%s%-12s %-9s %5s %9s %7s %9s %6s %5s\n",
		shardCol, "worker", "breaker", "queue", "completed", "failed", "timed-out", "consec", "busy")
	for _, w := range workers {
		if sharded {
			fmt.Fprintf(c.out, "%-10s ", w.Shard)
		}
		fmt.Fprintf(c.out, "%-12s %-9s %5d %9d %7d %9d %6d %5v\n",
			w.ID, w.Breaker, w.QueueDepth, w.Completed, w.Failed, w.TimedOut, w.Consec, w.Busy)
	}
	return nil
}

// shardsTable renders the /shards capacity snapshot — shard label,
// membership state and epoch, worker-partition size, pending and queued
// depth, ring weight, and steal counters — aggregated across every
// configured gateway. With several gateways listed, ones fronting an
// unsharded control plane are skipped and unreachable ones degrade to a
// warning line over the partial table; the command only fails outright
// when no gateway produced a row.
func (c *client) shardsTable() error {
	type shardRow struct {
		Index     int     `json:"index"`
		Label     string  `json:"label"`
		Workers   int     `json:"workers"`
		Pending   int     `json:"pending"`
		Queued    int     `json:"queued"`
		Weight    float64 `json:"weight"`
		StolenIn  int64   `json:"stolen_in"`
		StolenOut int64   `json:"stolen_out"`
		State     string  `json:"state"`
		Epoch     int64   `json:"epoch"`
	}
	var rows []shardRow
	var warnings []string
	bases := c.allBases()
	degrade := func(err error) error {
		if len(bases) > 1 {
			warnings = append(warnings, "warning: "+err.Error())
			return nil
		}
		return err
	}
	for _, base := range bases {
		resp, err := c.http.Get(base + "/shards")
		if err != nil {
			if err = degrade(err); err != nil {
				return err
			}
			continue
		}
		if resp.StatusCode == http.StatusNotFound && len(bases) > 1 {
			resp.Body.Close()
			continue
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err = degrade(fmt.Errorf("%s/shards returned %s: %s", base, resp.Status, bytes.TrimSpace(body))); err != nil {
				return err
			}
			continue
		}
		var page []shardRow
		err = json.NewDecoder(resp.Body).Decode(&page)
		resp.Body.Close()
		if err != nil {
			if err = degrade(fmt.Errorf("%s/shards: %v", base, err)); err != nil {
				return err
			}
			continue
		}
		rows = append(rows, page...)
	}
	if len(rows) == 0 {
		if len(warnings) > 0 {
			return fmt.Errorf("every configured gateway failed:\n%s", strings.Join(warnings, "\n"))
		}
		return fmt.Errorf("no configured gateway fronts a sharded control plane")
	}
	for _, w := range warnings {
		fmt.Fprintln(c.out, w)
	}
	fmt.Fprintf(c.out, "%-10s %-8s %8s %8s %7s %7s %6s %10s %11s\n",
		"shard", "state", "workers", "pending", "queued", "weight", "epoch", "stolen-in", "stolen-out")
	var tw, tp, tq int
	var tin, tout int64
	for _, r := range rows {
		fmt.Fprintf(c.out, "%-10s %-8s %8d %8d %7d %7.2f %6d %10d %11d\n",
			r.Label, r.State, r.Workers, r.Pending, r.Queued, r.Weight, r.Epoch, r.StolenIn, r.StolenOut)
		tw += r.Workers
		tp += r.Pending
		tq += r.Queued
		tin += r.StolenIn
		tout += r.StolenOut
	}
	fmt.Fprintf(c.out, "%-10s %-8s %8d %8d %7d %7s %6s %10d %11d\n", "total", "", tw, tp, tq, "", "", tin, tout)
	return nil
}

// shardOp posts one administrative membership operation — shards drain
// <shard> or shards join <shard>, by index or label — to the primary
// gateway and prints the shard's resulting status snapshot.
func (c *client) shardOp(op, id string) error {
	resp, err := c.http.Post(c.base+"/shards/"+id+"/"+op, "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := c.prettyPrint(resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("gateway returned %s", resp.Status)
	}
	return nil
}

// powerCap posts a new cluster power budget in watts (0 removes the cap)
// and prints the resulting snapshot.
func (c *client) powerCap(watts string) error {
	var w float64
	if _, err := fmt.Sscanf(watts, "%f", &w); err != nil {
		return fmt.Errorf("power cap: %q is not a wattage", watts)
	}
	body, err := json.Marshal(map[string]float64{"cap_w": w})
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.base+"/power/cap", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := c.prettyPrint(resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("gateway returned %s", resp.Status)
	}
	return nil
}

func (c *client) get(path string) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return c.prettyPrint(resp.Body)
}

func (c *client) invoke(function, argsJSON string) error {
	if !json.Valid([]byte(argsJSON)) {
		return fmt.Errorf("arguments are not valid JSON: %s", argsJSON)
	}
	body, err := json.Marshal(map[string]json.RawMessage{
		"function": json.RawMessage(fmt.Sprintf("%q", function)),
		"args":     json.RawMessage(argsJSON),
	})
	if err != nil {
		return err
	}
	url := c.base + "/invoke"
	okStatus := http.StatusOK
	if c.async {
		url += "?async=1"
		okStatus = http.StatusAccepted
	}
	resp, err := c.http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := c.prettyPrint(resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != okStatus {
		return fmt.Errorf("gateway returned %s", resp.Status)
	}
	return nil
}

// prettyPrint re-indents the gateway's JSON for terminal reading.
func (c *client) prettyPrint(r io.Reader) error {
	raw, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, bytes.TrimSpace(raw), "", "  "); err != nil {
		// Not JSON (e.g. a plain error page): print as-is.
		fmt.Fprintln(c.out, string(raw))
		return nil
	}
	fmt.Fprintln(c.out, buf.String())
	return nil
}
