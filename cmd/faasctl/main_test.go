package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"microfaas/internal/cluster"
	"microfaas/internal/gateway"
	"microfaas/internal/power"
	"microfaas/internal/telemetry"
	"microfaas/internal/trace"
	"microfaas/internal/tracing"
)

// startStack boots a live cluster + gateway and returns a client aimed at
// it, capturing output.
func startStack(t *testing.T) (*client, *strings.Builder) {
	t.Helper()
	l, err := cluster.StartLive(cluster.LiveOptions{Workers: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	gw, err := gateway.New(l.Orch, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })
	var sb strings.Builder
	return &client{
		base: "http://" + addr,
		http: &http.Client{Timeout: 30 * time.Second},
		out:  &sb,
	}, &sb
}

func TestInvokeCommand(t *testing.T) {
	c, out := startStack(t)
	if err := c.run([]string{"invoke", "CascSHA", `{"rounds":2,"seed":"ctl"}`}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"digest"`) {
		t.Fatalf("output missing digest:\n%s", out.String())
	}
}

func TestInvokeDefaultsToEmptyArgs(t *testing.T) {
	c, out := startStack(t)
	// MQConsume's arguments are all optional; "{}" must be accepted.
	if err := c.run([]string{"invoke", "MQConsume"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"offset"`) {
		t.Fatalf("output = %s", out.String())
	}
}

func TestInvokeRejectsBadJSON(t *testing.T) {
	c, _ := startStack(t)
	if err := c.run([]string{"invoke", "CascSHA", `{not json`}); err == nil {
		t.Fatal("bad JSON args accepted")
	}
}

func TestInvokeUnknownFunctionFails(t *testing.T) {
	c, out := startStack(t)
	err := c.run([]string{"invoke", "NoSuchFunction"})
	if err == nil {
		t.Fatal("unknown function invocation succeeded")
	}
	if !strings.Contains(out.String(), "error") {
		t.Fatalf("error body not printed:\n%s", out.String())
	}
}

func TestFunctionsCommand(t *testing.T) {
	c, out := startStack(t)
	if err := c.run([]string{"functions"}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CascSHA", "RedisInsert", "MQConsume"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("functions output missing %s", want)
		}
	}
}

func TestWorkersAndStatsCommands(t *testing.T) {
	c, out := startStack(t)
	if err := c.run([]string{"workers"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "live-000") {
		t.Fatalf("workers output = %s", out.String())
	}
	out.Reset()
	if err := c.run([]string{"stats"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"completed"`) {
		t.Fatalf("stats output = %s", out.String())
	}
}

func TestUnknownCommand(t *testing.T) {
	c, _ := startStack(t)
	if err := c.run([]string{"destroy-everything"}); err == nil {
		t.Fatal("unknown command accepted")
	}
}

func TestInvokeRequiresFunctionName(t *testing.T) {
	c, _ := startStack(t)
	if err := c.run([]string{"invoke"}); err == nil {
		t.Fatal("bare invoke accepted")
	}
}

func TestAsyncInvokeAndJobCommands(t *testing.T) {
	c, out := startStack(t)
	c.async = true
	if err := c.run([]string{"invoke", "RegExMatch", `{"pattern":"a","text":"a"}`}); err != nil {
		t.Fatal(err)
	}
	var accepted struct {
		JobID int64 `json:"job_id"`
	}
	if err := json.Unmarshal([]byte(out.String()), &accepted); err != nil || accepted.JobID == 0 {
		t.Fatalf("async invoke output %q, %v", out.String(), err)
	}
	// Poll the job until the result appears.
	c.async = false
	deadline := time.Now().Add(10 * time.Second)
	for {
		out.Reset()
		err := c.run([]string{"job", fmt.Sprintf("%d", accepted.JobID)})
		if err == nil && strings.Contains(out.String(), `"matched"`) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job result never appeared; last output %q, err %v", out.String(), err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// startTelemetryStack is startStack with telemetry enabled, so /metrics
// and top have data behind them.
func startTelemetryStack(t *testing.T) (*client, *strings.Builder) {
	t.Helper()
	tel := telemetry.New()
	l, err := cluster.StartLive(cluster.LiveOptions{Workers: 2, Seed: 4, Meter: true, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	gw, err := gateway.NewWithOptions(l.Orch, gateway.Options{Timeout: 30 * time.Second, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })
	var sb strings.Builder
	return &client{
		base:       "http://" + addr,
		http:       &http.Client{Timeout: 30 * time.Second},
		out:        &sb,
		interval:   10 * time.Millisecond,
		iterations: 2,
	}, &sb
}

func TestTopCommand(t *testing.T) {
	c, out := startTelemetryStack(t)
	if err := c.run([]string{"invoke", "CascSHA", `{"rounds":2,"seed":"top"}`}); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := c.run([]string{"top"}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"invocations 1", "CascSHA", "J/function", "workers:", "closed", "throughput"} {
		if !strings.Contains(got, want) {
			t.Fatalf("top output missing %q:\n%s", want, got)
		}
	}
}

func TestTopWithoutTelemetry(t *testing.T) {
	c, _ := startStack(t)
	c.iterations = 1
	if err := c.run([]string{"top"}); err == nil || !strings.Contains(err.Error(), "telemetry disabled") {
		t.Fatalf("err = %v, want telemetry-disabled hint", err)
	}
}

// startTracedSimStack runs a seeded MicroFaaS simulation with tracing on,
// serves its orchestrator through a gateway, and aims a client at it —
// the fixture for the trace-command acceptance test.
func startTracedSimStack(t *testing.T) (*client, *strings.Builder, *tracing.Tracer, *trace.Collector) {
	t.Helper()
	tr := tracing.New()
	s, err := cluster.NewMicroFaaSSim(4, cluster.SimConfig{Seed: 7, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	coll, err := s.RunSuite(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	gw, err := gateway.NewWithOptions(s.Orch, gateway.Options{Mode: "sim", Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })
	var sb strings.Builder
	return &client{
		base: "http://" + addr,
		http: &http.Client{Timeout: 30 * time.Second},
		out:  &sb,
	}, &sb, tr, coll
}

// parseTraceTable picks the phase rows and the total row out of the
// trace command's table output.
func parseTraceTable(t *testing.T, out string) (phases map[string]struct {
	dur time.Duration
	j   float64
}, total struct {
	dur time.Duration
	j   float64
}) {
	t.Helper()
	phases = map[string]struct {
		dur time.Duration
		j   float64
	}{}
	sawTotal := false
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		// Rows look like: "queue  1.2ms  0.000 J  1" / "total  1.9s  2.96 J".
		if len(f) < 4 || f[3] != "J" || f[0] == "phase" {
			continue
		}
		dur, err := time.ParseDuration(f[1])
		if err != nil {
			t.Fatalf("bad duration %q in line %q: %v", f[1], line, err)
		}
		var joules float64
		if _, err := fmt.Sscanf(f[2], "%f", &joules); err != nil {
			t.Fatalf("bad energy %q in line %q: %v", f[2], line, err)
		}
		if f[0] == "total" {
			total.dur, total.j = dur, joules
			sawTotal = true
			continue
		}
		phases[f[0]] = struct {
			dur time.Duration
			j   float64
		}{dur, joules}
	}
	if !sawTotal {
		t.Fatalf("no total row in output:\n%s", out)
	}
	if len(phases) == 0 {
		t.Fatalf("no phase rows in output:\n%s", out)
	}
	return phases, total
}

// TestTraceSlowestCommand is the tracing acceptance check at the CLI:
// `faasctl trace --slowest 1` against a seeded sim run must print a
// phase breakdown whose latencies sum to the end-to-end latency and
// whose joules sum to the invocation's metered energy within 1%.
func TestTraceSlowestCommand(t *testing.T) {
	c, out, tr, coll := startTracedSimStack(t)
	if err := c.run([]string{"trace", "--slowest", "1"}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"trace ", "queue", "boot", "exec", "total"} {
		if !strings.Contains(got, want) {
			t.Fatalf("trace output missing %q:\n%s", want, got)
		}
	}
	phases, total := parseTraceTable(t, got)

	// Printed phase durations must sum to the printed total (each row is
	// independently rounded to the microsecond, so allow that much slop
	// per row).
	var sumDur time.Duration
	var sumJ float64
	for _, p := range phases {
		sumDur += p.dur
		sumJ += p.j
	}
	if diff := (sumDur - total.dur).Abs(); diff > time.Duration(len(phases))*time.Microsecond {
		t.Fatalf("phase durations sum to %v, total says %v", sumDur, total.dur)
	}
	if diff := math.Abs(sumJ - total.j); diff > 0.01*total.j+0.001 {
		t.Fatalf("phase joules sum to %.3f, total says %.3f", sumJ, total.j)
	}

	// And the totals must agree with ground truth: the slowest trace's
	// record, its latency exactly and its metered energy within 1%.
	slow := tr.Slowest(1)
	if len(slow) != 1 {
		t.Fatalf("tracer has no slowest trace")
	}
	var rec *trace.Record
	records := coll.Records()
	for i := range records {
		if records[i].JobID == slow[0].Root.Job {
			rec = &records[i]
			break
		}
	}
	if rec == nil {
		t.Fatalf("no record for job %d", slow[0].Root.Job)
	}
	if wantLat := rec.Finished - rec.Submitted; (total.dur - wantLat).Abs() > time.Microsecond {
		t.Fatalf("printed latency %v vs record %v", total.dur, wantLat)
	}
	sbc := power.DefaultSBCModel()
	wantJ := rec.Boot.Seconds()*float64(sbc.Power(power.Booting)) +
		(rec.Overhead+rec.Exec).Seconds()*float64(sbc.Power(power.Busy))
	if diff := math.Abs(total.j - wantJ); diff > 0.01*wantJ {
		t.Fatalf("printed energy %.3f J vs metered %.3f J (%.2f%% off)",
			total.j, wantJ, 100*diff/wantJ)
	}
}

func TestTraceByJobCommand(t *testing.T) {
	c, out, tr, _ := startTracedSimStack(t)
	job := tr.Traces()[0].Root.Job
	if err := c.run([]string{"trace", fmt.Sprintf("%d", job)}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), fmt.Sprintf("job %d", job)) {
		t.Fatalf("trace output missing job id:\n%s", out.String())
	}
	parseTraceTable(t, out.String())
}

func TestTraceCommandUsage(t *testing.T) {
	c, _, _, _ := startTracedSimStack(t)
	if err := c.run([]string{"trace"}); err == nil {
		t.Fatal("bare trace accepted")
	}
	if err := c.run([]string{"trace", "999999"}); err == nil {
		t.Fatal("trace for unknown job succeeded")
	}
}
