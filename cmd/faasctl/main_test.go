package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"microfaas/internal/cluster"
	"microfaas/internal/gateway"
	"microfaas/internal/telemetry"
)

// startStack boots a live cluster + gateway and returns a client aimed at
// it, capturing output.
func startStack(t *testing.T) (*client, *strings.Builder) {
	t.Helper()
	l, err := cluster.StartLive(cluster.LiveOptions{Workers: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	gw, err := gateway.New(l.Orch, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })
	var sb strings.Builder
	return &client{
		base: "http://" + addr,
		http: &http.Client{Timeout: 30 * time.Second},
		out:  &sb,
	}, &sb
}

func TestInvokeCommand(t *testing.T) {
	c, out := startStack(t)
	if err := c.run([]string{"invoke", "CascSHA", `{"rounds":2,"seed":"ctl"}`}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"digest"`) {
		t.Fatalf("output missing digest:\n%s", out.String())
	}
}

func TestInvokeDefaultsToEmptyArgs(t *testing.T) {
	c, out := startStack(t)
	// MQConsume's arguments are all optional; "{}" must be accepted.
	if err := c.run([]string{"invoke", "MQConsume"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"offset"`) {
		t.Fatalf("output = %s", out.String())
	}
}

func TestInvokeRejectsBadJSON(t *testing.T) {
	c, _ := startStack(t)
	if err := c.run([]string{"invoke", "CascSHA", `{not json`}); err == nil {
		t.Fatal("bad JSON args accepted")
	}
}

func TestInvokeUnknownFunctionFails(t *testing.T) {
	c, out := startStack(t)
	err := c.run([]string{"invoke", "NoSuchFunction"})
	if err == nil {
		t.Fatal("unknown function invocation succeeded")
	}
	if !strings.Contains(out.String(), "error") {
		t.Fatalf("error body not printed:\n%s", out.String())
	}
}

func TestFunctionsCommand(t *testing.T) {
	c, out := startStack(t)
	if err := c.run([]string{"functions"}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CascSHA", "RedisInsert", "MQConsume"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("functions output missing %s", want)
		}
	}
}

func TestWorkersAndStatsCommands(t *testing.T) {
	c, out := startStack(t)
	if err := c.run([]string{"workers"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "live-000") {
		t.Fatalf("workers output = %s", out.String())
	}
	out.Reset()
	if err := c.run([]string{"stats"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"completed"`) {
		t.Fatalf("stats output = %s", out.String())
	}
}

func TestUnknownCommand(t *testing.T) {
	c, _ := startStack(t)
	if err := c.run([]string{"destroy-everything"}); err == nil {
		t.Fatal("unknown command accepted")
	}
}

func TestInvokeRequiresFunctionName(t *testing.T) {
	c, _ := startStack(t)
	if err := c.run([]string{"invoke"}); err == nil {
		t.Fatal("bare invoke accepted")
	}
}

func TestAsyncInvokeAndJobCommands(t *testing.T) {
	c, out := startStack(t)
	c.async = true
	if err := c.run([]string{"invoke", "RegExMatch", `{"pattern":"a","text":"a"}`}); err != nil {
		t.Fatal(err)
	}
	var accepted struct {
		JobID int64 `json:"job_id"`
	}
	if err := json.Unmarshal([]byte(out.String()), &accepted); err != nil || accepted.JobID == 0 {
		t.Fatalf("async invoke output %q, %v", out.String(), err)
	}
	// Poll the job until the result appears.
	c.async = false
	deadline := time.Now().Add(10 * time.Second)
	for {
		out.Reset()
		err := c.run([]string{"job", fmt.Sprintf("%d", accepted.JobID)})
		if err == nil && strings.Contains(out.String(), `"matched"`) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job result never appeared; last output %q, err %v", out.String(), err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// startTelemetryStack is startStack with telemetry enabled, so /metrics
// and top have data behind them.
func startTelemetryStack(t *testing.T) (*client, *strings.Builder) {
	t.Helper()
	tel := telemetry.New()
	l, err := cluster.StartLive(cluster.LiveOptions{Workers: 2, Seed: 4, Meter: true, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	gw, err := gateway.NewWithOptions(l.Orch, gateway.Options{Timeout: 30 * time.Second, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })
	var sb strings.Builder
	return &client{
		base:       "http://" + addr,
		http:       &http.Client{Timeout: 30 * time.Second},
		out:        &sb,
		interval:   10 * time.Millisecond,
		iterations: 2,
	}, &sb
}

func TestTopCommand(t *testing.T) {
	c, out := startTelemetryStack(t)
	if err := c.run([]string{"invoke", "CascSHA", `{"rounds":2,"seed":"top"}`}); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := c.run([]string{"top"}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"invocations 1", "CascSHA", "J/function", "workers:", "closed", "throughput"} {
		if !strings.Contains(got, want) {
			t.Fatalf("top output missing %q:\n%s", want, got)
		}
	}
}

func TestTopWithoutTelemetry(t *testing.T) {
	c, _ := startStack(t)
	c.iterations = 1
	if err := c.run([]string{"top"}); err == nil || !strings.Contains(err.Error(), "telemetry disabled") {
		t.Fatalf("err = %v, want telemetry-disabled hint", err)
	}
}
