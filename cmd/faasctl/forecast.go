package main

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// forecastTable renders GET /forecast: the controller's mode and error
// accounting, then one row per tracked function with its observed and
// forecast arrival rates.
func (c *client) forecastTable() error {
	resp, err := c.http.Get(c.base + "/forecast")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return c.prettyPrint(resp.Body)
	}
	var snap struct {
		Mode       string  `json:"mode"`
		ErrorRatio float64 `json:"error_ratio"`
		Target     int     `json:"target_workers"`
		Declining  bool    `json:"declining"`
		Fallbacks  int     `json:"fallbacks_total"`
		Ticks      int     `json:"ticks"`
		HorizonMs  float64 `json:"horizon_ms"`
		Functions  []struct {
			Function   string  `json:"function"`
			Rate       float64 `json:"rate_per_s"`
			EWMA       float64 `json:"ewma_per_s"`
			RateAhead  float64 `json:"rate_ahead_per_s"`
			Workers    float64 `json:"workers"`
			ErrorRatio float64 `json:"error_ratio"`
		} `json:"functions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return err
	}
	trend := "rising/flat"
	if snap.Declining {
		trend = "declining"
	}
	// The error ratio is sMAPE-scaled [0,2]; halved it reads roughly as
	// a MAPE percentage.
	fmt.Fprintf(c.out, "mode %s  target %d workers  trend %s  error %.3f (~%.1f%% MAPE)  fallbacks %d  ticks %d  horizon %.0fms\n",
		snap.Mode, snap.Target, trend, snap.ErrorRatio, 50*snap.ErrorRatio, snap.Fallbacks, snap.Ticks, snap.HorizonMs)
	if len(snap.Functions) == 0 {
		fmt.Fprintln(c.out, "no functions tracked yet")
		return nil
	}
	fmt.Fprintf(c.out, "%-16s %10s %10s %10s %9s %8s\n",
		"function", "rate/s", "ewma/s", "ahead/s", "workers", "error")
	for _, f := range snap.Functions {
		fmt.Fprintf(c.out, "%-16s %10.3f %10.3f %10.3f %9.2f %8.3f\n",
			f.Function, f.Rate, f.EWMA, f.RateAhead, f.Workers, f.ErrorRatio)
	}
	return nil
}
