package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"microfaas/internal/cluster"
	"microfaas/internal/gateway"
	"microfaas/internal/telemetry"
	"microfaas/internal/tsdb"
)

// startObservedStack is startTelemetryStack plus an embedded time-series
// store behind /query, /slo, and /alerts. The store scrapes the live
// cluster's registry and a hand-driven one (so tests can force exact
// burn trajectories); it is scraped manually — the test owns the clock.
func startObservedStack(t *testing.T, rules []tsdb.Rule) (*client, *strings.Builder, *tsdb.Store, *telemetry.Registry) {
	t.Helper()
	tel := telemetry.New()
	l, err := cluster.StartLive(cluster.LiveOptions{Workers: 2, Seed: 4, Meter: true, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	synth := telemetry.NewRegistry()
	store := tsdb.New(tsdb.Config{})
	store.AddSource("", tel.Registry())
	store.AddSource("", synth)
	if err := store.SetRules(rules); err != nil {
		t.Fatal(err)
	}
	gw, err := gateway.NewWithOptions(l.Orch, gateway.Options{
		Timeout: 30 * time.Second, Telemetry: tel, TSDB: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })
	var sb strings.Builder
	return &client{
		base:       "http://" + addr,
		http:       &http.Client{Timeout: 30 * time.Second},
		out:        &sb,
		interval:   10 * time.Millisecond,
		iterations: 1,
	}, &sb, store, synth
}

// TestTopOnceRendersSingleFrame pins the -once behavior (main maps the
// flag to iterations=1): exactly one frame, and no throughput column —
// a rate needs two frames.
func TestTopOnceRendersSingleFrame(t *testing.T) {
	c, out := startTelemetryStack(t)
	c.iterations = 1
	if err := c.run([]string{"invoke", "CascSHA", `{"rounds":2,"seed":"once"}`}); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := c.run([]string{"top"}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "invocations 1") || !strings.Contains(got, "CascSHA") {
		t.Fatalf("single frame missing dashboard content:\n%s", got)
	}
	if strings.Contains(got, "throughput") {
		t.Fatalf("single frame computed a throughput:\n%s", got)
	}
	if n := strings.Count(got, "invocations"); n != 1 {
		t.Fatalf("%d frames rendered, want 1:\n%s", n, got)
	}
}

// TestTopFlagsAfterSubcommand pins the `faasctl top -once -json`
// spelling: flags after the subcommand must parse (the global flag
// parser stops at the first positional, so the dispatch re-parses),
// and stray positionals are a usage error.
func TestTopFlagsAfterSubcommand(t *testing.T) {
	c, out := startTelemetryStack(t)
	if err := c.run([]string{"invoke", "CascSHA", `{"rounds":2,"seed":"tf"}`}); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := c.run([]string{"top", "-once", "-json"}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("top -once -json rendered %d lines, want one JSON frame:\n%s", len(lines), out.String())
	}
	var frame struct {
		Invocations float64 `json:"invocations"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &frame); err != nil {
		t.Fatalf("frame %q: %v", lines[0], err)
	}
	if frame.Invocations != 1 {
		t.Fatalf("frame = %+v", frame)
	}
	if err := c.run([]string{"top", "stray"}); err == nil {
		t.Fatal("top with a positional argument accepted")
	}
	if err := c.run([]string{"top", "-no-such-flag"}); err == nil {
		t.Fatal("top with an unknown flag accepted")
	}
}

// TestWatchFlagsAfterSubcommand: `watch <metric> -once` and
// `watch -once <metric>` both parse — flags and positionals interleave.
func TestWatchFlagsAfterSubcommand(t *testing.T) {
	c, out, store, _ := startObservedStack(t, nil)
	c.iterations = 0 // would loop forever if -once were dropped
	if err := c.run([]string{"invoke", "CascSHA", `{"rounds":2,"seed":"wf"}`}); err != nil {
		t.Fatal(err)
	}
	store.Scrape(time.Second)
	out.Reset()
	if err := c.run([]string{"watch", "microfaas_jobs_submitted_total", "-once"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "microfaas_jobs_submitted_total (last)") {
		t.Fatalf("watch metric -once output:\n%s", out.String())
	}
	out.Reset()
	c.iterations = 0
	if err := c.run([]string{"watch", "-once", "microfaas_jobs_submitted_total", "rate"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "microfaas_jobs_submitted_total (rate)") {
		t.Fatalf("watch -once metric op output:\n%s", out.String())
	}
}

// TestTopJSONEmitsFramePerRefresh pins -json: one parseable JSON object
// per refresh (NDJSON when looping), carrying the same aggregates the
// table renders.
func TestTopJSONEmitsFramePerRefresh(t *testing.T) {
	c, out := startTelemetryStack(t)
	c.jsonOut = true
	c.iterations = 2
	if err := c.run([]string{"invoke", "CascSHA", `{"rounds":2,"seed":"json"}`}); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := c.run([]string{"top"}); err != nil {
		t.Fatal(err)
	}
	frames := 0
	sc := bufio.NewScanner(strings.NewReader(out.String()))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var frame struct {
			Invocations float64 `json:"invocations"`
			Functions   []struct {
				Function string  `json:"function"`
				OK       float64 `json:"ok"`
			} `json:"functions"`
		}
		if err := json.Unmarshal([]byte(line), &frame); err != nil {
			t.Fatalf("frame %q: %v", line, err)
		}
		if frame.Invocations != 1 || len(frame.Functions) != 1 || frame.Functions[0].Function != "CascSHA" {
			t.Fatalf("frame = %+v", frame)
		}
		frames++
	}
	if frames != 2 {
		t.Fatalf("%d JSON frames, want 2", frames)
	}
}

func TestWatchCommandRendersSparkline(t *testing.T) {
	c, out, store, _ := startObservedStack(t, nil)
	if err := c.run([]string{"invoke", "CascSHA", `{"rounds":2,"seed":"w"}`}); err != nil {
		t.Fatal(err)
	}
	store.Scrape(time.Second)
	if err := c.run([]string{"invoke", "CascSHA", `{"rounds":2,"seed":"w2"}`}); err != nil {
		t.Fatal(err)
	}
	store.Scrape(2 * time.Second)
	out.Reset()

	// The lookback window scales with the refresh interval; widen it so
	// both synthetic scrape instants land inside.
	c.interval = time.Second
	if err := c.run([]string{"watch", "microfaas_jobs_submitted_total"}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "microfaas_jobs_submitted_total (last)") {
		t.Fatalf("watch header missing:\n%s", got)
	}
	if !strings.ContainsAny(got, "▁▂▃▄▅▆▇█") {
		t.Fatalf("watch frame has no sparkline:\n%s", got)
	}

	// An unseen metric renders a hint, not an error.
	out.Reset()
	if err := c.run([]string{"watch", "no_such_metric"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no series") {
		t.Fatalf("unseen metric output = %s", out.String())
	}

	// Usage errors: no metric, and a bad op bubbled up from the gateway.
	if err := c.run([]string{"watch"}); err == nil {
		t.Fatal("bare watch accepted")
	}
	if err := c.run([]string{"watch", "microfaas_jobs_submitted_total", "median"}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestSLOAndAlertsCommands(t *testing.T) {
	rules := []tsdb.Rule{{
		Name: "errors", Kind: tsdb.KindErrorRatio, Function: "f", Target: 0.9,
		Windows: &tsdb.Windows{
			FastShort: tsdb.Duration(2 * time.Second), FastLong: tsdb.Duration(4 * time.Second), FastBurn: 2,
			SlowShort: tsdb.Duration(4 * time.Second), SlowLong: tsdb.Duration(8 * time.Second), SlowBurn: 2,
		},
	}}
	c, out, store, synth := startObservedStack(t, rules)
	okC := synth.Counter(tsdb.DefaultErrorMetric, "outcomes", "function", "f", "result", "ok")
	errC := synth.Counter(tsdb.DefaultErrorMetric, "outcomes", "function", "f", "result", "error")

	now := time.Duration(0)
	step := func(ok, errs int) {
		okC.Add(float64(ok))
		errC.Add(float64(errs))
		now += time.Second
		store.Scrape(now)
	}
	for i := 0; i < 6; i++ {
		step(100, 0)
	}

	// Healthy: the slo table shows both pages "ok", alerts reports none.
	if err := c.run([]string{"slo"}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "errors") || !strings.Contains(got, "error_ratio") ||
		strings.Count(got, "ok") < 2 || strings.Contains(got, "FIRING") {
		t.Fatalf("healthy slo table:\n%s", got)
	}
	out.Reset()
	if err := c.run([]string{"alerts"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no alerts firing") {
		t.Fatalf("healthy alerts output = %s", out.String())
	}

	// Outage: both pages cross their thresholds.
	for i := 0; i < 6; i++ {
		step(0, 100)
	}
	out.Reset()
	if err := c.run([]string{"slo"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "FIRING") {
		t.Fatalf("slo table shows no firing page during outage:\n%s", out.String())
	}
	out.Reset()
	if err := c.run([]string{"alerts"}); err != nil {
		t.Fatal(err)
	}
	got = out.String()
	if !strings.Contains(got, "errors") || !strings.Contains(got, "history:") ||
		!strings.Contains(got, string(telemetry.EventAlertFiring)) {
		t.Fatalf("alerts during outage:\n%s", got)
	}
}

func TestSLOCommandWithoutRules(t *testing.T) {
	c, out, _, _ := startObservedStack(t, nil)
	if err := c.run([]string{"slo"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no SLO rules configured") {
		t.Fatalf("output = %s", out.String())
	}
}
