package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"microfaas/internal/telemetry"
)

// top polls the gateway's /metrics (and /workers for breaker states) and
// renders a cluster dashboard every interval: throughput, latency
// quantiles, per-function J/function, worker health. iterations > 0 stops
// after that many refreshes (scripts and tests); 0 runs until interrupted.
func (c *client) top(interval time.Duration, iterations int) error {
	var prevTotal float64
	var prevAt time.Time
	for i := 0; iterations <= 0 || i < iterations; i++ {
		if i > 0 {
			time.Sleep(interval)
			fmt.Fprintln(c.out)
		}
		samples, err := c.scrapeMetrics()
		if err != nil {
			return err
		}
		now := time.Now()
		total := samples.Sum("microfaas_function_invocations_total")
		c.renderTop(samples, total, prevTotal, now, prevAt)
		prevTotal, prevAt = total, now
	}
	return nil
}

// scrapeMetrics fetches and parses one /metrics exposition.
func (c *client) scrapeMetrics() (telemetry.Samples, error) {
	resp, err := c.http.Get(c.base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("gateway /metrics returned %s (telemetry disabled?)", resp.Status)
	}
	return telemetry.ParseText(resp.Body)
}

func (c *client) renderTop(samples telemetry.Samples, total, prevTotal float64, now, prevAt time.Time) {
	pending, _ := samples.Value("microfaas_jobs_pending")
	fmt.Fprintf(c.out, "invocations %.0f  pending %.0f", total, pending)
	if !prevAt.IsZero() && now.After(prevAt) {
		rate := (total - prevTotal) / now.Sub(prevAt).Minutes()
		fmt.Fprintf(c.out, "  throughput %.1f func/min", rate)
	}
	p50 := samples.HistogramQuantile("microfaas_invocation_latency_seconds", 0.50)
	p99 := samples.HistogramQuantile("microfaas_invocation_latency_seconds", 0.99)
	if p50 > 0 || p99 > 0 {
		fmt.Fprintf(c.out, "  latency p50 ≤ %.0fms p99 ≤ %.0fms", p50*1000, p99*1000)
	}
	if watts, ok := samples.Value("microfaas_cluster_power_watts"); ok {
		joules, _ := samples.Value("microfaas_cluster_energy_joules_total")
		fmt.Fprintf(c.out, "  power %.2fW (%.1fJ total)", watts, joules)
	}
	if powered, ok := samples.Value("microfaas_workers_powered"); ok {
		fmt.Fprintf(c.out, "  powered %.0f", powered)
		if cap, ok := samples.Value("microfaas_power_cap_watts"); ok && cap > 0 {
			fmt.Fprintf(c.out, "  cap %.2fW", cap)
		}
	}
	fmt.Fprintln(c.out)

	if fns := samples.LabelValues("microfaas_function_invocations_total", "function"); len(fns) > 0 {
		sort.Strings(fns)
		fmt.Fprintf(c.out, "%-14s %8s %7s %12s\n", "function", "ok", "errors", "J/function")
		for _, fn := range fns {
			okCount, _ := samples.Value("microfaas_function_invocations_total", "function", fn, "result", "ok")
			errCount, _ := samples.Value("microfaas_function_invocations_total", "function", fn, "result", "error")
			jpf := "-"
			if joules, ok := samples.Value("microfaas_function_energy_joules_total", "function", fn); ok && okCount+errCount > 0 {
				jpf = fmt.Sprintf("%.3f", joules/(okCount+errCount))
			}
			fmt.Fprintf(c.out, "%-14s %8.0f %7.0f %12s\n", fn, okCount, errCount, jpf)
		}
	}
	c.renderWorkers(samples)
}

// renderWorkers appends the per-worker health line. Busy, queue-depth, and
// power state come from the same /metrics snapshot as the rest of the
// dashboard, so every number on screen is one consistent cut of the
// cluster — the previous implementation re-fetched /workers after the
// scrape, and its busy/queue counts raced the metrics they sat next to.
// Breaker state is not a gauge (metrics expose only transition counters),
// so it alone still comes from /workers, purely as an annotation.
func (c *client) renderWorkers(samples telemetry.Samples) {
	ids := samples.LabelValues("microfaas_worker_busy", "worker")
	if len(ids) == 0 {
		return
	}
	sort.Strings(ids)
	breakers := c.fetchBreakers()
	fmt.Fprintf(c.out, "workers:")
	for _, id := range ids {
		state := breakers[id]
		if state == "" {
			state = "?"
		}
		if busy, _ := samples.Value("microfaas_worker_busy", "worker", id); busy > 0 {
			state += ",busy"
		}
		if powered, ok := samples.Value("microfaas_worker_powered", "worker", id); ok {
			if powered > 0 {
				state += ",on"
			} else {
				state += ",off"
			}
		}
		queue, _ := samples.Value("microfaas_queue_depth", "worker", id)
		fmt.Fprintf(c.out, " %s=%s(q%.0f)", id, state, queue)
	}
	fmt.Fprintln(c.out)
}

// fetchBreakers maps worker id → current breaker state from /workers.
// Best-effort: on any error the dashboard renders with "?" states rather
// than failing the refresh.
func (c *client) fetchBreakers() map[string]string {
	resp, err := c.http.Get(c.base + "/workers")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var workers []struct {
		ID      string `json:"id"`
		Breaker string `json:"breaker"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&workers); err != nil {
		return nil
	}
	states := make(map[string]string, len(workers))
	for _, w := range workers {
		states[w.ID] = w.Breaker
	}
	return states
}
