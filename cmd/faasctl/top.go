package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"microfaas/internal/telemetry"
)

// top polls /metrics (and /workers for breaker states) on every
// configured gateway and renders one cluster dashboard every interval:
// throughput, latency quantiles, per-function J/function, worker
// health. Sharded gateways expose shard-labeled samples and multiple
// gateways each contribute their own — both aggregate the same way,
// by summing counters and merging histogram buckets before any
// quantile is taken. iterations > 0 stops after that many refreshes
// (scripts and tests); 0 runs until interrupted.
func (c *client) top(interval time.Duration, iterations int) error {
	var prevTotal float64
	var prevAt time.Time
	for i := 0; iterations <= 0 || i < iterations; i++ {
		if i > 0 {
			time.Sleep(interval)
			fmt.Fprintln(c.out)
		}
		samples, err := c.scrapeMetrics()
		if err != nil {
			return err
		}
		now := time.Now()
		total := samples.Sum("microfaas_function_invocations_total")
		if c.jsonOut {
			if err := c.renderTopJSON(samples, total, prevTotal, now, prevAt); err != nil {
				return err
			}
		} else {
			c.renderTop(samples, total, prevTotal, now, prevAt)
		}
		prevTotal, prevAt = total, now
	}
	return nil
}

// scrapeMetrics fetches and parses one /metrics exposition from every
// configured gateway, concatenating the samples into one set.
func (c *client) scrapeMetrics() (telemetry.Samples, error) {
	var all telemetry.Samples
	for _, base := range c.allBases() {
		resp, err := c.http.Get(base + "/metrics")
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("%s/metrics returned %s (telemetry disabled?)", base, resp.Status)
		}
		samples, err := telemetry.ParseText(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		all = append(all, samples...)
	}
	return all, nil
}

// renderTop writes one dashboard frame. Scalar families are read with
// Sum, not Value: a sharded gateway splits microfaas_jobs_pending and
// friends into one sample per shard, and a multi-gateway scrape yields
// one per gateway — the cluster view is always their sum.
func (c *client) renderTop(samples telemetry.Samples, total, prevTotal float64, now, prevAt time.Time) {
	pending := samples.Sum("microfaas_jobs_pending")
	fmt.Fprintf(c.out, "invocations %.0f  pending %.0f", total, pending)
	if !prevAt.IsZero() && now.After(prevAt) {
		rate := (total - prevTotal) / now.Sub(prevAt).Minutes()
		fmt.Fprintf(c.out, "  throughput %.1f func/min", rate)
	}
	p50 := samples.HistogramQuantile("microfaas_invocation_latency_seconds", 0.50)
	p99 := samples.HistogramQuantile("microfaas_invocation_latency_seconds", 0.99)
	if p50 > 0 || p99 > 0 {
		fmt.Fprintf(c.out, "  latency p50 ≤ %.0fms p99 ≤ %.0fms", p50*1000, p99*1000)
	}
	if _, ok := samples.Value("microfaas_cluster_power_watts"); ok {
		watts := samples.Sum("microfaas_cluster_power_watts")
		joules := samples.Sum("microfaas_cluster_energy_joules_total")
		fmt.Fprintf(c.out, "  power %.2fW (%.1fJ total)", watts, joules)
	}
	if _, ok := samples.Value("microfaas_workers_powered"); ok {
		fmt.Fprintf(c.out, "  powered %.0f", samples.Sum("microfaas_workers_powered"))
		if cap := samples.Sum("microfaas_power_cap_watts"); cap > 0 {
			fmt.Fprintf(c.out, "  cap %.2fW", cap)
		}
	}
	if stolen := samples.Sum("microfaas_shard_stolen_total", "direction", "in"); stolen > 0 {
		fmt.Fprintf(c.out, "  stolen %.0f", stolen)
	}
	fmt.Fprintln(c.out)

	if fns := samples.LabelValues("microfaas_function_invocations_total", "function"); len(fns) > 0 {
		sort.Strings(fns)
		fmt.Fprintf(c.out, "%-14s %8s %7s %12s\n", "function", "ok", "errors", "J/function")
		for _, fn := range fns {
			okCount := samples.Sum("microfaas_function_invocations_total", "function", fn, "result", "ok")
			errCount := samples.Sum("microfaas_function_invocations_total", "function", fn, "result", "error")
			jpf := "-"
			if joules := samples.Sum("microfaas_function_energy_joules_total", "function", fn); joules > 0 && okCount+errCount > 0 {
				jpf = fmt.Sprintf("%.3f", joules/(okCount+errCount))
			}
			fmt.Fprintf(c.out, "%-14s %8.0f %7.0f %12s\n", fn, okCount, errCount, jpf)
		}
	}
	c.renderWorkers(samples)
}

// renderTopJSON writes one dashboard frame as a single JSON object —
// `top -json` for scripts; one object per refresh (NDJSON when looping).
func (c *client) renderTopJSON(samples telemetry.Samples, total, prevTotal float64, now, prevAt time.Time) error {
	frame := topFrame{
		Invocations: total,
		Pending:     samples.Sum("microfaas_jobs_pending"),
		P50S:        samples.HistogramQuantile("microfaas_invocation_latency_seconds", 0.50),
		P99S:        samples.HistogramQuantile("microfaas_invocation_latency_seconds", 0.99),
		PowerW:      samples.Sum("microfaas_cluster_power_watts"),
		EnergyJ:     samples.Sum("microfaas_cluster_energy_joules_total"),
		Stolen:      samples.Sum("microfaas_shard_stolen_total", "direction", "in"),
		Functions:   []topFunctionJSON{},
	}
	if !prevAt.IsZero() && now.After(prevAt) {
		frame.ThroughputM = (total - prevTotal) / now.Sub(prevAt).Minutes()
	}
	fns := samples.LabelValues("microfaas_function_invocations_total", "function")
	sort.Strings(fns)
	for _, fn := range fns {
		row := topFunctionJSON{
			Function: fn,
			OK:       samples.Sum("microfaas_function_invocations_total", "function", fn, "result", "ok"),
			Errors:   samples.Sum("microfaas_function_invocations_total", "function", fn, "result", "error"),
		}
		if joules := samples.Sum("microfaas_function_energy_joules_total", "function", fn); joules > 0 && row.OK+row.Errors > 0 {
			row.JoulesPF = joules / (row.OK + row.Errors)
		}
		frame.Functions = append(frame.Functions, row)
	}
	return json.NewEncoder(c.out).Encode(frame)
}

// renderWorkers appends the per-worker health line. Busy, queue-depth, and
// power state come from the same /metrics snapshot as the rest of the
// dashboard, so every number on screen is one consistent cut of the
// cluster — the previous implementation re-fetched /workers after the
// scrape, and its busy/queue counts raced the metrics they sat next to.
// Breaker state is not a gauge (metrics expose only transition counters),
// so it alone still comes from /workers, purely as an annotation.
func (c *client) renderWorkers(samples telemetry.Samples) {
	ids := samples.LabelValues("microfaas_worker_busy", "worker")
	if len(ids) == 0 {
		return
	}
	sort.Strings(ids)
	breakers := c.fetchBreakers()
	fmt.Fprintf(c.out, "workers:")
	for _, id := range ids {
		state := breakers[id]
		if state == "" {
			state = "?"
		}
		if busy, _ := samples.Value("microfaas_worker_busy", "worker", id); busy > 0 {
			state += ",busy"
		}
		if powered, ok := samples.Value("microfaas_worker_powered", "worker", id); ok {
			if powered > 0 {
				state += ",on"
			} else {
				state += ",off"
			}
		}
		queue, _ := samples.Value("microfaas_queue_depth", "worker", id)
		fmt.Fprintf(c.out, " %s=%s(q%.0f)", id, state, queue)
	}
	fmt.Fprintln(c.out)
}

// fetchBreakers maps worker id → current breaker state from /workers on
// every configured gateway. Best-effort: on any error the dashboard
// renders with "?" states rather than failing the refresh.
func (c *client) fetchBreakers() map[string]string {
	workers, err := c.fetchWorkers()
	if err != nil {
		return nil
	}
	states := make(map[string]string, len(workers))
	for _, w := range workers {
		states[w.ID] = w.Breaker
	}
	return states
}
