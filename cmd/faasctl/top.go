package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"microfaas/internal/telemetry"
)

// top polls the gateway's /metrics (and /workers for breaker states) and
// renders a cluster dashboard every interval: throughput, latency
// quantiles, per-function J/function, worker health. iterations > 0 stops
// after that many refreshes (scripts and tests); 0 runs until interrupted.
func (c *client) top(interval time.Duration, iterations int) error {
	var prevTotal float64
	var prevAt time.Time
	for i := 0; iterations <= 0 || i < iterations; i++ {
		if i > 0 {
			time.Sleep(interval)
			fmt.Fprintln(c.out)
		}
		samples, err := c.scrapeMetrics()
		if err != nil {
			return err
		}
		now := time.Now()
		total := samples.Sum("microfaas_function_invocations_total")
		c.renderTop(samples, total, prevTotal, now, prevAt)
		prevTotal, prevAt = total, now
	}
	return nil
}

// scrapeMetrics fetches and parses one /metrics exposition.
func (c *client) scrapeMetrics() (telemetry.Samples, error) {
	resp, err := c.http.Get(c.base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("gateway /metrics returned %s (telemetry disabled?)", resp.Status)
	}
	return telemetry.ParseText(resp.Body)
}

func (c *client) renderTop(samples telemetry.Samples, total, prevTotal float64, now, prevAt time.Time) {
	pending, _ := samples.Value("microfaas_jobs_pending")
	fmt.Fprintf(c.out, "invocations %.0f  pending %.0f", total, pending)
	if !prevAt.IsZero() && now.After(prevAt) {
		rate := (total - prevTotal) / now.Sub(prevAt).Minutes()
		fmt.Fprintf(c.out, "  throughput %.1f func/min", rate)
	}
	p50 := samples.HistogramQuantile("microfaas_invocation_latency_seconds", 0.50)
	p99 := samples.HistogramQuantile("microfaas_invocation_latency_seconds", 0.99)
	if p50 > 0 || p99 > 0 {
		fmt.Fprintf(c.out, "  latency p50 ≤ %.0fms p99 ≤ %.0fms", p50*1000, p99*1000)
	}
	if watts, ok := samples.Value("microfaas_cluster_power_watts"); ok {
		joules, _ := samples.Value("microfaas_cluster_energy_joules_total")
		fmt.Fprintf(c.out, "  power %.2fW (%.1fJ total)", watts, joules)
	}
	fmt.Fprintln(c.out)

	if fns := samples.LabelValues("microfaas_function_invocations_total", "function"); len(fns) > 0 {
		sort.Strings(fns)
		fmt.Fprintf(c.out, "%-14s %8s %7s %12s\n", "function", "ok", "errors", "J/function")
		for _, fn := range fns {
			okCount, _ := samples.Value("microfaas_function_invocations_total", "function", fn, "result", "ok")
			errCount, _ := samples.Value("microfaas_function_invocations_total", "function", fn, "result", "error")
			jpf := "-"
			if joules, ok := samples.Value("microfaas_function_energy_joules_total", "function", fn); ok && okCount+errCount > 0 {
				jpf = fmt.Sprintf("%.3f", joules/(okCount+errCount))
			}
			fmt.Fprintf(c.out, "%-14s %8.0f %7.0f %12s\n", fn, okCount, errCount, jpf)
		}
	}
	c.renderBreakers()
}

// renderBreakers appends the /workers health line; metrics expose breaker
// transitions, but the current state lives in the workers endpoint.
func (c *client) renderBreakers() {
	resp, err := c.http.Get(c.base + "/workers")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var workers []struct {
		ID      string `json:"id"`
		Breaker string `json:"breaker"`
		Queue   int    `json:"queue_depth"`
		Busy    bool   `json:"busy"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&workers); err != nil {
		return
	}
	fmt.Fprintf(c.out, "workers:")
	for _, w := range workers {
		state := w.Breaker
		if w.Busy {
			state += ",busy"
		}
		fmt.Fprintf(c.out, " %s=%s(q%d)", w.ID, state, w.Queue)
	}
	fmt.Fprintln(c.out)
}
