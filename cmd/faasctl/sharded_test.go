package main

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"microfaas/internal/cluster"
	"microfaas/internal/core"
	"microfaas/internal/gateway"
	"microfaas/internal/shard"
	"microfaas/internal/telemetry"
)

// startShardedStack boots two live clusters as shards behind one plane
// gateway and returns a client aimed at it.
func startShardedStack(t *testing.T) (*client, *strings.Builder) {
	t.Helper()
	orchs := make([]*core.Orchestrator, 2)
	var rt core.Runtime
	for i := range orchs {
		l, err := cluster.StartLive(cluster.LiveOptions{
			Workers:    2,
			Seed:       int64(21 + i),
			Telemetry:  telemetry.New(),
			ShardLabel: []string{"shard-00", "shard-01"}[i],
			JobIDBase:  int64(i) << 40,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(l.Close)
		orchs[i] = l.Orch
		rt = l.Runtime
	}
	plane, err := shard.NewPlane(rt, orchs, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	gw, err := gateway.NewSharded(plane, gateway.Options{Timeout: 30 * time.Second, Mode: "live"})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })
	var sb strings.Builder
	return &client{
		base: "http://" + addr,
		http: &http.Client{Timeout: 30 * time.Second},
		out:  &sb,
	}, &sb
}

func TestShardsCommand(t *testing.T) {
	c, out := startShardedStack(t)
	if err := c.run([]string{"invoke", "CascSHA", `{"rounds":2,"seed":"sh"}`}); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := c.run([]string{"shards"}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"shard-00", "shard-01", "stolen-in", "total"} {
		if !strings.Contains(got, want) {
			t.Fatalf("shards output missing %q:\n%s", want, got)
		}
	}
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 4 { // header + 2 shards + total
		t.Fatalf("shards table has %d lines:\n%s", len(lines), got)
	}
}

func TestShardsCommandOnUnshardedGateway(t *testing.T) {
	c, _ := startStack(t)
	if err := c.run([]string{"shards"}); err == nil {
		t.Fatal("shards against an unsharded gateway succeeded")
	}
}

func TestWorkersTableShardColumn(t *testing.T) {
	c, out := startShardedStack(t)
	if err := c.run([]string{"workers"}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "shard") || !strings.Contains(got, "shard-01") {
		t.Fatalf("workers table missing shard column:\n%s", got)
	}
	if got := strings.Count(got, "live-"); got != 4 {
		t.Fatalf("workers table lists %d workers, want 4:\n%s", got, out.String())
	}
}

// TestMultiGatewayAggregation points one client at two independent
// unsharded gateways (the -gateway comma-list path) and checks workers
// and top merge both clusters' views.
func TestMultiGatewayAggregation(t *testing.T) {
	var bases []string
	for i := 0; i < 2; i++ {
		l, err := cluster.StartLive(cluster.LiveOptions{Workers: 2, Seed: int64(31 + i), Telemetry: telemetry.New()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(l.Close)
		gw, err := gateway.NewWithOptions(l.Orch, gateway.Options{Timeout: 30 * time.Second, Telemetry: l.Telemetry})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := gw.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { gw.Close() })
		bases = append(bases, "http://"+addr)
	}
	var sb strings.Builder
	c := &client{base: bases[0], bases: bases, http: &http.Client{Timeout: 30 * time.Second}, out: &sb}

	if err := c.run([]string{"invoke", "CascSHA", `{"rounds":2,"seed":"mg"}`}); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := c.run([]string{"workers"}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "live-"); got != 4 {
		t.Fatalf("aggregated workers table lists %d workers, want 4:\n%s", got, sb.String())
	}
	sb.Reset()
	if err := c.top(time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, "invocations 1") {
		t.Fatalf("aggregated top missing the invocation:\n%s", got)
	}
	if !strings.Contains(got, "live-000") {
		t.Fatalf("aggregated top missing workers line:\n%s", got)
	}
}
