package main

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"microfaas/internal/cluster"
	"microfaas/internal/core"
	"microfaas/internal/gateway"
	"microfaas/internal/shard"
	"microfaas/internal/telemetry"
)

// startShardedStack boots two live clusters as shards behind one plane
// gateway and returns a client aimed at it.
func startShardedStack(t *testing.T) (*client, *strings.Builder) {
	t.Helper()
	orchs := make([]*core.Orchestrator, 2)
	var rt core.Runtime
	for i := range orchs {
		l, err := cluster.StartLive(cluster.LiveOptions{
			Workers:    2,
			Seed:       int64(21 + i),
			Telemetry:  telemetry.New(),
			ShardLabel: []string{"shard-00", "shard-01"}[i],
			JobIDBase:  int64(i) << 40,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(l.Close)
		orchs[i] = l.Orch
		rt = l.Runtime
	}
	plane, err := shard.NewPlane(rt, orchs, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	gw, err := gateway.NewSharded(plane, gateway.Options{Timeout: 30 * time.Second, Mode: "live"})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })
	var sb strings.Builder
	return &client{
		base: "http://" + addr,
		http: &http.Client{Timeout: 30 * time.Second},
		out:  &sb,
	}, &sb
}

func TestShardsCommand(t *testing.T) {
	c, out := startShardedStack(t)
	if err := c.run([]string{"invoke", "CascSHA", `{"rounds":2,"seed":"sh"}`}); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := c.run([]string{"shards"}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"shard-00", "shard-01", "stolen-in", "total"} {
		if !strings.Contains(got, want) {
			t.Fatalf("shards output missing %q:\n%s", want, got)
		}
	}
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 4 { // header + 2 shards + total
		t.Fatalf("shards table has %d lines:\n%s", len(lines), got)
	}
}

// TestShardsDrainJoinCommand drives the administrative subcommands:
// drain takes a shard out of service (the table shows it dead), join
// brings it back, and malformed invocations get a usage error.
func TestShardsDrainJoinCommand(t *testing.T) {
	c, out := startShardedStack(t)
	if err := c.run([]string{"shards", "drain", "shard-01"}); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, `"state": "dead"`) {
		t.Fatalf("drain output missing dead state:\n%s", got)
	}
	out.Reset()
	if err := c.run([]string{"shards"}); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "dead") || !strings.Contains(got, "up") {
		t.Fatalf("shards table after drain:\n%s", got)
	}
	out.Reset()
	if err := c.run([]string{"shards", "join", "1"}); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, `"state": "up"`) {
		t.Fatalf("join output missing up state:\n%s", got)
	}
	// Draining a shard that is already up twice: second drain conflicts.
	if err := c.run([]string{"shards", "drain", "shard-01"}); err != nil {
		t.Fatal(err)
	}
	if err := c.run([]string{"shards", "drain", "shard-01"}); err == nil {
		t.Fatal("double drain succeeded")
	}
	if err := c.run([]string{"shards", "join", "shard-01"}); err != nil {
		t.Fatal(err)
	}
	if err := c.run([]string{"shards", "drain"}); err == nil {
		t.Fatal("shards drain without a shard id succeeded")
	}
}

// TestShardsCommandDegradedGateway checks the multi-gateway path keeps
// working when one listed gateway is unreachable: the table renders
// from the reachable gateways with a warning line, and the command only
// fails when every gateway is down.
func TestShardsCommandDegradedGateway(t *testing.T) {
	c, out := startShardedStack(t)
	// 127.0.0.1:1 refuses connections; with a healthy gateway alongside
	// it the table must still render.
	c.bases = []string{c.base, "http://127.0.0.1:1"}
	if err := c.run([]string{"shards"}); err != nil {
		t.Fatalf("shards with one dead gateway: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "warning:") || !strings.Contains(got, "shard-00") || !strings.Contains(got, "total") {
		t.Fatalf("degraded shards table:\n%s", got)
	}

	// Every gateway unreachable: now it is an error, carrying the detail.
	c.bases = []string{"http://127.0.0.1:1", "http://127.0.0.1:1"}
	if err := c.run([]string{"shards"}); err == nil {
		t.Fatal("shards with every gateway down succeeded")
	}

	// A single unreachable gateway stays a hard error too.
	c.bases = []string{"http://127.0.0.1:1"}
	if err := c.run([]string{"shards"}); err == nil {
		t.Fatal("shards against one dead gateway succeeded")
	}
}

func TestShardsCommandOnUnshardedGateway(t *testing.T) {
	c, _ := startStack(t)
	if err := c.run([]string{"shards"}); err == nil {
		t.Fatal("shards against an unsharded gateway succeeded")
	}
}

func TestWorkersTableShardColumn(t *testing.T) {
	c, out := startShardedStack(t)
	if err := c.run([]string{"workers"}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "shard") || !strings.Contains(got, "shard-01") {
		t.Fatalf("workers table missing shard column:\n%s", got)
	}
	if got := strings.Count(got, "live-"); got != 4 {
		t.Fatalf("workers table lists %d workers, want 4:\n%s", got, out.String())
	}
}

// TestTopAggregatesShardLabels drives traffic through a sharded plane
// and checks top is label-aware: the merged /metrics exposition splits
// every family into shard-labeled series, and the dashboard sums them
// into one cluster view — one total, one row per function, never one
// row per shard.
func TestTopAggregatesShardLabels(t *testing.T) {
	c, out := startShardedStack(t)
	for i := 0; i < 8; i++ {
		body := `{"rounds":2,"seed":"agg"}`
		if err := c.run([]string{"invoke", "CascSHA", body}); err != nil {
			t.Fatal(err)
		}
	}
	out.Reset()
	if err := c.top(time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "invocations 8") {
		t.Fatalf("top did not sum shard-labeled counters:\n%s", got)
	}
	if n := strings.Count(got, "CascSHA"); n != 1 {
		t.Fatalf("CascSHA rendered %d rows, want one summed row:\n%s", n, got)
	}
	if !strings.Contains(got, "       8       0") {
		t.Fatalf("function row does not sum ok across shards:\n%s", got)
	}
	// The health line renders distinct worker ids (shards reuse the same
	// "live-NNN" names, so the two shards' partitions fold together).
	if !strings.Contains(got, "workers: live-000") {
		t.Fatalf("workers line missing:\n%s", got)
	}
}

// TestMultiGatewayAggregation points one client at two independent
// unsharded gateways (the -gateway comma-list path) and checks workers
// and top merge both clusters' views.
func TestMultiGatewayAggregation(t *testing.T) {
	var bases []string
	for i := 0; i < 2; i++ {
		l, err := cluster.StartLive(cluster.LiveOptions{Workers: 2, Seed: int64(31 + i), Telemetry: telemetry.New()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(l.Close)
		gw, err := gateway.NewWithOptions(l.Orch, gateway.Options{Timeout: 30 * time.Second, Telemetry: l.Telemetry})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := gw.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { gw.Close() })
		bases = append(bases, "http://"+addr)
	}
	var sb strings.Builder
	c := &client{base: bases[0], bases: bases, http: &http.Client{Timeout: 30 * time.Second}, out: &sb}

	if err := c.run([]string{"invoke", "CascSHA", `{"rounds":2,"seed":"mg"}`}); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := c.run([]string{"workers"}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "live-"); got != 4 {
		t.Fatalf("aggregated workers table lists %d workers, want 4:\n%s", got, sb.String())
	}
	sb.Reset()
	if err := c.top(time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, "invocations 1") {
		t.Fatalf("aggregated top missing the invocation:\n%s", got)
	}
	if !strings.Contains(got, "live-000") {
		t.Fatalf("aggregated top missing workers line:\n%s", got)
	}
}
