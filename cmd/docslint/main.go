// Command docslint is the repository's documentation gate, run by
// `make check` and CI. It enforces two invariants with nothing but the
// standard library:
//
//  1. Every exported identifier in the core API packages — including
//     methods, struct fields, and interface methods — carries a doc
//     comment. A grouped const/var block may be covered by one comment on
//     the block.
//  2. Every relative link in the top-level markdown documentation points
//     at a file that exists.
//
// Usage:
//
//	docslint [-root dir]
//
// Exits non-zero listing every violation.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// apiPackages are the packages whose exported surface must be fully
// documented (DESIGN.md §"public surface").
var apiPackages = []string{
	"internal/core",
	"internal/node",
	"internal/gpio",
	"internal/power",
	"internal/powermgr",
	"internal/forecast",
	"internal/tracing",
	"internal/telemetry",
}

// docFiles are the markdown documents whose relative links must resolve.
var docFiles = []string{
	"README.md",
	"DESIGN.md",
	"EXPERIMENTS.md",
	"ARCHITECTURE.md",
}

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()
	var problems []string
	for _, pkg := range apiPackages {
		ps, err := lintPackage(filepath.Join(*root, pkg))
		if err != nil {
			fmt.Fprintln(os.Stderr, "docslint:", err)
			os.Exit(1)
		}
		problems = append(problems, ps...)
	}
	for _, doc := range docFiles {
		ps, err := lintMarkdown(*root, doc)
		if err != nil {
			// A required document that is missing or unreadable is itself
			// a finding, not a tool failure.
			problems = append(problems, fmt.Sprintf("docslint: %v", err))
			continue
		}
		problems = append(problems, ps...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "docslint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// lintPackage parses one package directory (tests excluded) and returns a
// finding for every exported identifier without a doc comment.
func lintPackage(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	flag := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: %s is exported but undocumented", p.Filename, p.Line, what))
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil && receiverExported(d) {
						flag(d.Pos(), funcLabel(d))
					}
				case *ast.GenDecl:
					lintGenDecl(d, flag)
				}
			}
		}
	}
	return problems, nil
}

// receiverExported reports whether a method's receiver type is itself
// exported; methods on unexported types are internal however they're
// spelled.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return !ok || id.IsExported()
}

func funcLabel(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "func " + d.Name.Name
	}
	return "method " + d.Name.Name
}

// lintGenDecl checks a type/const/var declaration. A doc comment on the
// grouped block covers every spec inside it; otherwise each exported spec
// needs its own doc (or, for consts/vars/fields, a trailing comment).
func lintGenDecl(d *ast.GenDecl, flag func(token.Pos, string)) {
	blockDocumented := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !blockDocumented && s.Doc == nil && s.Comment == nil {
				flag(s.Pos(), "type "+s.Name.Name)
			}
			if s.Name.IsExported() {
				lintTypeBody(s, flag)
			}
		case *ast.ValueSpec:
			if blockDocumented || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					flag(name.Pos(), kindWord(d.Tok)+" "+name.Name)
				}
			}
		}
	}
}

func kindWord(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// lintTypeBody checks exported struct fields and interface methods of an
// exported type.
func lintTypeBody(s *ast.TypeSpec, flag func(token.Pos, string)) {
	switch t := s.Type.(type) {
	case *ast.StructType:
		for _, f := range t.Fields.List {
			if f.Doc != nil || f.Comment != nil {
				continue
			}
			for _, name := range f.Names {
				if name.IsExported() {
					flag(name.Pos(), "field "+s.Name.Name+"."+name.Name)
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			if m.Doc != nil || m.Comment != nil {
				continue
			}
			for _, name := range m.Names {
				if name.IsExported() {
					flag(name.Pos(), "interface method "+s.Name.Name+"."+name.Name)
				}
			}
		}
	}
}

// mdLink matches inline markdown links and images; group 1 is the target.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// lintMarkdown returns a finding for every relative link in the document
// whose target file does not exist. External links (scheme-prefixed) and
// pure in-page anchors are skipped.
func lintMarkdown(root, name string) ([]string, error) {
	path := filepath.Join(root, name)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	var problems []string
	for i, line := range strings.Split(string(raw), "\n") {
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0] // drop in-page anchor
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s:%d: broken link %q", name, i+1, m[1]))
			}
		}
	}
	return problems, nil
}
