package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLintPackageFlagsUndocumentedExports(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "pkg.go"), `// Package demo is documented.
package demo

func Undocumented() {}

// Documented has a doc comment.
func Documented() {}

type Bad struct {
	Field int
	// Ok is documented.
	Ok int
	hidden int
}

// Iface is documented.
type Iface interface {
	NoDoc()
	WithDoc() // WithDoc is documented inline.
}

const Loose = 1

// Grouped constants share the block comment.
const (
	A = 1
	B = 2
)

func unexported() {}
`)
	// Test files are excluded even when broken.
	writeFile(t, filepath.Join(dir, "pkg_test.go"), "package demo\n\nfunc TestExportedNoDoc() {}\n")
	problems, err := lintPackage(dir)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(problems, "\n")
	for _, want := range []string{
		"func Undocumented",
		"type Bad",
		"field Bad.Field",
		"interface method Iface.NoDoc",
		"const Loose",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("lint missed %q:\n%s", want, joined)
		}
	}
	for _, clean := range []string{"Documented", "Bad.Ok", "WithDoc", "A", "B", "hidden", "unexported", "TestExportedNoDoc"} {
		for _, p := range problems {
			if strings.HasSuffix(p, clean+" is exported but undocumented") {
				t.Errorf("false positive: %s", p)
			}
		}
	}
	if len(problems) != 5 {
		t.Errorf("found %d problems, want 5:\n%s", len(problems), joined)
	}
}

func TestLintMarkdownFlagsBrokenLinks(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "exists.md"), "hello")
	writeFile(t, filepath.Join(root, "DOC.md"), strings.Join([]string{
		"[good](exists.md)",
		"[anchor](exists.md#section) and [page](#local)",
		"[external](https://example.com/missing.md)",
		"[broken](missing.md)",
		"![img](missing.png)",
	}, "\n"))
	problems, err := lintMarkdown(root, "DOC.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 2 {
		t.Fatalf("found %d problems, want 2 (missing.md, missing.png):\n%s",
			len(problems), strings.Join(problems, "\n"))
	}
	for _, p := range problems {
		if !strings.Contains(p, "missing.") {
			t.Errorf("unexpected finding: %s", p)
		}
	}
}

// TestRepositoryIsClean runs the real gate over the repository itself —
// the same check `make docslint` enforces.
func TestRepositoryIsClean(t *testing.T) {
	root := "../.."
	for _, pkg := range apiPackages {
		problems, err := lintPackage(filepath.Join(root, pkg))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range problems {
			t.Error(p)
		}
	}
	for _, doc := range docFiles {
		problems, err := lintMarkdown(root, doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range problems {
			t.Error(p)
		}
	}
}
