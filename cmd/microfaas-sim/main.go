// Command microfaas-sim regenerates the paper's tables and figures from
// the calibrated cluster simulator.
//
// Usage:
//
//	microfaas-sim [flags] <experiment>
//
// Experiments: fig1, fig3, fig4, fig5, headline, table2, shardedrack,
// shardfailover, ablations, all.
//
// Flags:
//
//	-n     invocations per function for fig3/headline (default 100;
//	       the paper issues 1000)
//	-seed  simulation seed (default 1)
//	-csv   write the raw per-invocation trace of fig3's MicroFaaS run
//	       to the given file
//	-prom  write a Prometheus text-format metrics snapshot of fig3's
//	       MicroFaaS run to the given file
//	-trace write a Chrome trace_event dump (chrome://tracing, Perfetto)
//	       of fig3's MicroFaaS run to the given file
//	-slo   load SLO burn-rate rules (JSON) and print alert timelines;
//	       supported by shardfailover and powermgmt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"microfaas/internal/cluster"
	"microfaas/internal/experiments"
	"microfaas/internal/model"
	"microfaas/internal/telemetry"
	"microfaas/internal/tracing"
	"microfaas/internal/tsdb"
)

// options carries the parsed flags into the experiment dispatch.
type options struct {
	n         int
	seed      int64
	parallel  int
	shards    int
	csvPath   string
	promPath  string
	tracePath string
	asCSV     bool
	slo       []tsdb.Rule
	predict   bool
}

func main() {
	n := flag.Int("n", 100, "invocations per function (paper: 1000)")
	seed := flag.Int64("seed", 1, "simulation seed")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker-pool size for independent sim instances (1 = serial; output is identical at any value)")
	shards := flag.Int("shards", 0, "control-plane shard count for shardedrack/shardfailover (0 = the experiment default, 64)")
	csvPath := flag.String("csv", "", "write fig3 MicroFaaS trace CSV to this path")
	promPath := flag.String("prom", "", "write fig3 MicroFaaS metrics snapshot (Prometheus text format) to this path")
	tracePath := flag.String("trace", "", "write fig3 MicroFaaS span dump (Chrome trace_event JSON) to this path")
	sloPath := flag.String("slo", "", "SLO burn-rate rule file (JSON); shardfailover and powermgmt print alert timelines")
	predict := flag.Bool("predict", false, "add the forecast-steered predictive arm to powermgmt")
	format := flag.String("format", "text", "output format for fig3/fig4/fig5/loadsweep/keepwarm: text or csv")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] fig1|table1|fig3|fig4|fig5|headline|table2|rackscale|rackscale10k|shardedrack|shardfailover|loadsweep|keepwarm|diurnal|powermgmt|sensitivity|bootimpact|ablations|report|all\n", os.Args[0])
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "microfaas-sim: unknown format %q\n", *format)
		os.Exit(2)
	}
	opts := options{n: *n, seed: *seed, parallel: *parallel, shards: *shards,
		csvPath: *csvPath, promPath: *promPath,
		tracePath: *tracePath, asCSV: *format == "csv", predict: *predict}
	if *sloPath != "" {
		rules, err := tsdb.LoadRules(*sloPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "microfaas-sim:", err)
			os.Exit(2)
		}
		opts.slo = rules
	}
	if err := run(os.Stdout, flag.Arg(0), opts); err != nil {
		fmt.Fprintln(os.Stderr, "microfaas-sim:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, experiment string, opts options) error {
	n, seed, par := opts.n, opts.seed, opts.parallel
	switch experiment {
	case "fig1":
		return experiments.WriteFig1(out)
	case "fig3":
		rows, err := experiments.Fig3(experiments.Fig3Config{InvocationsPerFunction: n, Seed: seed, Parallel: par})
		if err != nil {
			return err
		}
		writeFig3 := experiments.WriteFig3
		if opts.asCSV {
			writeFig3 = experiments.WriteFig3CSV
		}
		if err := writeFig3(out, rows); err != nil {
			return err
		}
		if opts.csvPath != "" {
			if err := writeTraceCSV(opts.csvPath, n, seed); err != nil {
				return err
			}
		}
		if opts.promPath != "" {
			if err := writePromSnapshot(opts.promPath, n, seed); err != nil {
				return err
			}
		}
		if opts.tracePath != "" {
			return writeChromeTrace(opts.tracePath, n, seed)
		}
		return nil
	case "fig4":
		res, err := experiments.Fig4(experiments.Fig4Config{Seed: seed, Parallel: par})
		if err != nil {
			return err
		}
		if opts.asCSV {
			return experiments.WriteFig4CSV(out, res)
		}
		return experiments.WriteFig4(out, res)
	case "fig5":
		pts, err := experiments.Fig5(experiments.Fig5Config{Seed: seed, Parallel: par})
		if err != nil {
			return err
		}
		if opts.asCSV {
			return experiments.WriteFig5CSV(out, pts)
		}
		return experiments.WriteFig5(out, pts)
	case "headline":
		res, err := experiments.Headline(experiments.HeadlineConfig{InvocationsPerFunction: n, Seed: seed, Parallel: par})
		if err != nil {
			return err
		}
		return experiments.WriteHeadline(out, res)
	case "bootimpact":
		rows, err := experiments.BootImpact(experiments.BootImpactConfig{Seed: seed, Parallel: par})
		if err != nil {
			return err
		}
		return experiments.WriteBootImpact(out, rows)
	case "report":
		return experiments.WriteReport(out, experiments.ReportConfig{InvocationsPerFunction: n, Seed: seed, Parallel: par})
	case "table1":
		return experiments.WriteTable1(out)
	case "table2":
		return experiments.WriteTable2(out)
	case "loadsweep":
		pts, err := experiments.LoadSweep(experiments.LoadSweepConfig{Seed: seed, Parallel: par})
		if err != nil {
			return err
		}
		if opts.asCSV {
			return experiments.WriteLoadSweepCSV(out, pts)
		}
		return experiments.WriteLoadSweep(out, pts)
	case "keepwarm":
		pts, err := experiments.KeepWarm(experiments.KeepWarmConfig{Seed: seed, Parallel: par})
		if err != nil {
			return err
		}
		if opts.asCSV {
			return experiments.WriteKeepWarmCSV(out, pts)
		}
		return experiments.WriteKeepWarm(out, pts)
	case "diurnal":
		res, err := experiments.Diurnal(experiments.DiurnalConfig{Seed: seed, Parallel: par})
		if err != nil {
			return err
		}
		return experiments.WriteDiurnal(out, res)
	case "powermgmt":
		res, err := experiments.PowerMgmt(experiments.PowerMgmtConfig{Seed: seed, Parallel: par, SLO: opts.slo, Predict: opts.predict})
		if err != nil {
			return err
		}
		return experiments.WritePowerMgmt(out, res)
	case "sensitivity":
		res, err := experiments.Sensitivity(experiments.SensitivityConfig{Seed: seed, Parallel: par})
		if err != nil {
			return err
		}
		return experiments.WriteSensitivity(out, res)
	case "rackscale":
		res, err := experiments.RackScale(experiments.RackScaleConfig{Seed: seed, Parallel: par})
		if err != nil {
			return err
		}
		return experiments.WriteRackScale(out, res)
	case "rackscale10k":
		// The dispatch-scalability demonstration: a 10,000-SBC MicroFaaS
		// rack against the throughput-matched 415-server conventional rack
		// (10000/989 ≈ 10.1× the Table II sizing).
		res, err := experiments.RackScale(experiments.RackScaleConfig{
			SBCs: 10000, Servers: 415, Seed: seed, Parallel: par,
		})
		if err != nil {
			return err
		}
		return experiments.WriteRackScale(out, res)
	case "shardedrack":
		// The sharded-control-plane demonstration: 64 shards × 1100 SBCs
		// behind the consistent-hash tier, sustaining >1M func/min, with
		// hot-key arms isolating the work stealer's p99 effect.
		res, err := experiments.ShardedRack(experiments.ShardedRackConfig{
			Shards: opts.shards, Seed: seed, Parallel: par,
		})
		if err != nil {
			return err
		}
		return experiments.WriteShardedRack(out, res)
	case "shardfailover":
		// The dynamic-membership demonstration: 4 of 64 shards lose their
		// control-plane hosts mid-run; the health checker drains their
		// queues into survivors and re-homes their boards, losing nothing.
		res, err := experiments.ShardFailover(experiments.ShardFailoverConfig{
			Shards: opts.shards, Seed: seed, Parallel: par, SLO: opts.slo,
		})
		if err != nil {
			return err
		}
		return experiments.WriteShardFailover(out, res)
	case "ablations":
		return writeAblations(out, seed, n, par)
	case "all":
		return experiments.WriteAll(out, experiments.AllConfig{InvocationsPerFunction: n, Seed: seed, Parallel: par})
	default:
		return fmt.Errorf("unknown experiment %q", experiment)
	}
}

func writeAblations(out io.Writer, seed int64, n, par int) error {
	crypto, err := experiments.AblationCryptoAccel(8, seed, n, par)
	if err != nil {
		return err
	}
	if err := experiments.WriteAblation(out, crypto); err != nil {
		return err
	}
	gige, err := experiments.AblationGigE(seed, n, par)
	if err != nil {
		return err
	}
	if err := experiments.WriteAblation(out, gige); err != nil {
		return err
	}
	noreboot, err := experiments.AblationNoReboot(seed, n, par)
	if err != nil {
		return err
	}
	return experiments.WriteAblation(out, noreboot)
}

// writeTraceCSV re-runs the MicroFaaS cluster and dumps its raw trace.
func writeTraceCSV(path string, n int, seed int64) error {
	s, err := cluster.NewMicroFaaSSim(model.SBCCount, cluster.SimConfig{Seed: seed})
	if err != nil {
		return err
	}
	coll, err := s.RunSuite(n, nil)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := coll.WriteCSV(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d records to %s\n", coll.Len(), path)
	return f.Close()
}

// writePromSnapshot re-runs the MicroFaaS cluster with telemetry enabled
// and dumps the end-of-run registry — the same exposition a live
// gateway's /metrics serves, frozen at drain time.
func writePromSnapshot(path string, n int, seed int64) error {
	tel := telemetry.New()
	s, err := cluster.NewMicroFaaSSim(model.SBCCount, cluster.SimConfig{Seed: seed, Telemetry: tel})
	if err != nil {
		return err
	}
	if _, err := s.RunSuite(n, nil); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tel.Registry().WritePrometheus(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote metrics snapshot to %s\n", path)
	return f.Close()
}

// writeChromeTrace re-runs the MicroFaaS cluster with span recording
// enabled (sample-all) and dumps every committed trace in Chrome
// trace_event format — load the file in chrome://tracing or Perfetto to
// see the queue→boot→exec→reboot timeline per worker.
func writeChromeTrace(path string, n int, seed int64) error {
	tr := tracing.NewWithConfig(tracing.Config{Seed: seed, MaxTraces: 1 << 20})
	s, err := cluster.NewMicroFaaSSim(model.SBCCount, cluster.SimConfig{Seed: seed, Tracer: tr})
	if err != nil {
		return err
	}
	if _, err := s.RunSuite(n, nil); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tracing.WriteChromeTrace(f, tr.Traces()); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d traces to %s\n", tr.Len(), path)
	return f.Close()
}
