package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"microfaas/internal/telemetry"
)

func TestRunEachExperiment(t *testing.T) {
	cases := map[string][]string{
		"fig1":      {"baseline", "falcon"},
		"fig3":      {"CascSHA", "paper: 4 / 9 / 4"},
		"fig5":      {"workers", "60.00"},
		"headline":  {"Efficiency gain", "200.6"},
		"table2":    {"82451", "savings: 34.2%"},
		"rackscale": {"throughput ratio"},
		"ablations": {"crypto-accelerator", "gigabit NIC", "no reboot"},
	}
	for exp, wants := range cases {
		exp, wants := exp, wants
		t.Run(exp, func(t *testing.T) {
			var sb strings.Builder
			if err := run(&sb, exp, options{n: 20, seed: 1}); err != nil {
				t.Fatal(err)
			}
			for _, w := range wants {
				if !strings.Contains(sb.String(), w) {
					t.Fatalf("%s output missing %q:\n%s", exp, w, sb.String())
				}
			}
		})
	}
}

// TestRunShardedRack drives the sharded experiment through the CLI
// dispatch at a reduced shard count (the -shards flag) so the test
// stays fast while covering the real code path.
func TestRunShardedRack(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "shardedrack", options{seed: 1, shards: 2}); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"Sharded control plane (2 shards", "uniform/full", "hotkey/steal", "sustained"} {
		if !strings.Contains(sb.String(), w) {
			t.Fatalf("shardedrack output missing %q:\n%s", w, sb.String())
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "fig99", options{n: 10, seed: 1}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunWritesCSVTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	var sb strings.Builder
	if err := run(&sb, "fig3", options{n: 5, seed: 1, csvPath: path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 50 {
		t.Fatalf("CSV has only %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "job_id,function,worker,attempt") {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

func TestRunCSVFormats(t *testing.T) {
	cases := map[string]string{
		"fig3":      "function,mf_working_ms",
		"fig4":      "vms,throughput_per_min",
		"fig5":      "active_workers,microfaas_watts",
		"loadsweep": "load_fraction,offered_per_min",
		"keepwarm":  "window_s,mean_latency_ms",
	}
	for exp, header := range cases {
		exp, header := exp, header
		t.Run(exp, func(t *testing.T) {
			var sb strings.Builder
			if err := run(&sb, exp, options{n: 10, seed: 1, asCSV: true}); err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
			if !strings.HasPrefix(lines[0], header) {
				t.Fatalf("%s CSV header = %q, want prefix %q", exp, lines[0], header)
			}
			if len(lines) < 2 {
				t.Fatalf("%s CSV has no data rows", exp)
			}
			wantFields := strings.Count(lines[0], ",") + 1
			for i, line := range lines[1:] {
				if got := strings.Count(line, ",") + 1; got != wantFields {
					t.Fatalf("%s CSV row %d has %d fields, header has %d", exp, i+1, got, wantFields)
				}
			}
		})
	}
}

func TestRunTable1(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "table1", options{n: 1, seed: 1}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"FloatOps*", "CascSHA", "MQConsume", "network-bound", "kvstore"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 missing %q:\n%s", want, out)
		}
	}
	// Exactly 6 FunctionBench stars, matching the paper.
	if got := strings.Count(out, "*"); got != 7 { // 6 function rows + 1 in the caption
		t.Fatalf("table1 has %d asterisks, want 7 (6 functions + caption)", got)
	}
}

func TestRunReport(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "report", options{n: 10, seed: 1}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# MicroFaaS reproduction report",
		"## Headline",
		"## Fig 1", "## Fig 3", "## Fig 4", "## Fig 5",
		"## Table II", "## Extensions",
		"| CascSHA |",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestRunWritesPromSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.prom")
	var sb strings.Builder
	if err := run(&sb, "fig3", options{n: 5, seed: 1, promPath: path}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	samples, err := telemetry.ParseText(f)
	if err != nil {
		t.Fatalf("snapshot does not parse: %v", err)
	}
	if got, ok := samples.Value("microfaas_jobs_submitted_total"); !ok || got <= 0 {
		t.Fatalf("jobs_submitted = %v (present %v)", got, ok)
	}
	if got := samples.Sum("microfaas_function_energy_joules_total"); got <= 0 {
		t.Fatalf("no energy attributed: %v", got)
	}
}
