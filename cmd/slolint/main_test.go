package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeRules drops a rule file into the test's temp dir.
func writeRules(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const validRules = `[
  {"name": "latency", "kind": "latency", "threshold_s": 2, "target": 0.99,
   "windows": {"fast_short": "4s", "fast_long": "10s", "fast_burn": 2,
               "slow_short": "8s", "slow_long": "20s", "slow_burn": 1.2}},
  {"name": "errors", "kind": "error_ratio", "target": 0.99}
]`

func TestLintAcceptsValidFiles(t *testing.T) {
	path := writeRules(t, "rules.json", validRules)
	var out, errOut strings.Builder
	if code := run([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("stdout = %q", out.String())
	}
}

// TestLintShippedExamples pins the repo's example rule files: the files
// the docs tell users to run must always lint.
func TestLintShippedExamples(t *testing.T) {
	var out, errOut strings.Builder
	files := []string{"../../examples/slo/rules.json", "../../examples/slo/diurnal.json"}
	if code := run(files, &out, &errOut); code != 0 {
		t.Fatalf("shipped examples failed lint (exit %d): %s", code, errOut.String())
	}
}

func TestLintRejections(t *testing.T) {
	cases := []struct {
		name, content, want string
	}{
		{"badjson.json", `[{"name": `, "bad rule file"},
		{"empty.json", `[]`, "empty"},
		{"badkind.json", `[{"name": "x", "kind": "latencyy", "threshold_s": 1, "target": 0.5}]`, "unknown kind"},
		{"badwindow.json", `[{"name": "x", "kind": "error_ratio", "target": 0.5,
			"windows": {"fast_short": "10s", "fast_long": "4s", "fast_burn": 2,
			            "slow_short": "8s", "slow_long": "20s", "slow_burn": 1}}]`, "shorter than"},
		{"badmetric.json", `[{"name": "x", "kind": "error_ratio", "target": 0.5, "metric": "microfaas_no_such_total"}]`, "unknown metric"},
		{"dupname.json", `[{"name": "x", "kind": "error_ratio", "target": 0.5},
			{"name": "x", "kind": "error_ratio", "target": 0.9}]`, "duplicate rule name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeRules(t, tc.name, tc.content)
			var out, errOut strings.Builder
			if code := run([]string{path}, &out, &errOut); code != 1 {
				t.Fatalf("exit %d, want 1 (stderr %q)", code, errOut.String())
			}
			if !strings.Contains(errOut.String(), tc.want) {
				t.Fatalf("stderr %q missing %q", errOut.String(), tc.want)
			}
		})
	}
}

func TestLintNoArgsIsUsageError(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "usage") {
		t.Fatalf("stderr = %q", errOut.String())
	}
}

// TestLintMissingFile keeps the error path readable: the message names
// the file and the underlying problem.
func TestLintMissingFile(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"/no/such/file.json"}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "/no/such/file.json") {
		t.Fatalf("stderr = %q", errOut.String())
	}
}
