// Command slolint validates SLO burn-rate rule files, run by
// `make check` and CI. A rule file that parses but references a metric
// the platform never emits would silently never fire; slolint turns
// that into a build failure instead. For every file it checks:
//
//  1. The file parses as a JSON array of rules and every rule passes
//     structural validation (known kind, parameter signs and ranges,
//     window ordering) — the same checks the sim and live binaries run
//     at load time.
//  2. Every rule's effective metric (its override, or the kind's
//     default) appears in the platform's metric catalogue.
//  3. Rule names are unique within the file, so alert timelines and
//     /slo rows stay unambiguous.
//
// Usage:
//
//	slolint <rules.json> [more.json ...]
//
// Exits non-zero listing every violation.
package main

import (
	"fmt"
	"io"
	"os"

	"microfaas/internal/tsdb"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run lints every named file and returns the process exit code.
func run(paths []string, out, errOut io.Writer) int {
	if len(paths) == 0 {
		fmt.Fprintln(errOut, "usage: slolint <rules.json> [more.json ...]")
		return 2
	}
	known := tsdb.KnownMetrics()
	failed := false
	for _, path := range paths {
		if err := lintFile(path, known); err != nil {
			fmt.Fprintf(errOut, "%s: %v\n", path, err)
			failed = true
			continue
		}
		fmt.Fprintf(out, "%s: ok\n", path)
	}
	if failed {
		return 1
	}
	return 0
}

// lintFile runs every check against one rule file.
func lintFile(path string, known []string) error {
	rules, err := tsdb.LoadRules(path)
	if err != nil {
		return err
	}
	seen := map[string]bool{}
	for _, r := range rules {
		if seen[r.Name] {
			return fmt.Errorf("duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
		if err := r.ValidateMetric(known); err != nil {
			return err
		}
	}
	return nil
}
