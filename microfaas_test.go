package microfaas

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// These tests exercise the public facade exactly the way a downstream
// consumer would, end to end.

func TestPublicLiveClusterLifecycle(t *testing.T) {
	cl, err := StartLiveCluster(LiveOptions{Workers: 2, Seed: 1, Meter: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	done := make(chan InvocationResult, 1)
	cl.Orch.SubmitAsync("CascSHA", []byte(`{"rounds":3,"seed":"pub"}`),
		func(r InvocationResult) { done <- r })
	select {
	case res := <-done:
		if res.Err != "" {
			t.Fatalf("invocation failed: %s", res.Err)
		}
		var out struct {
			Digest string `json:"digest"`
		}
		if err := json.Unmarshal(res.Output, &out); err != nil || out.Digest == "" {
			t.Fatalf("output = %s", res.Output)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("invocation never completed")
	}
}

func TestPublicGateway(t *testing.T) {
	cl, err := StartLiveCluster(LiveOptions{Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	gw, addr, err := ServeGateway(cl, "127.0.0.1:0", 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	resp, err := http.Post("http://"+addr+"/invoke", "application/json",
		strings.NewReader(`{"function":"RegExMatch","args":{"pattern":"a","text":"abc"}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway invoke → %d", resp.StatusCode)
	}
}

func TestPublicSimClusters(t *testing.T) {
	mf, err := NewMicroFaaSSim(4, SimOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mf.RunSuite(4, nil); err != nil {
		t.Fatal(err)
	}
	if mf.Stats().Completed == 0 {
		t.Fatal("no completions")
	}
	conv, err := NewConventionalSim(4, SimOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conv.RunSuite(4, nil); err != nil {
		t.Fatal(err)
	}
	// The paper's central claim through the public API:
	if mf.Stats().JoulesPerFunction >= conv.Stats().JoulesPerFunction {
		t.Fatal("MicroFaaS not more energy efficient through the public API")
	}
}

func TestPublicSuiteListings(t *testing.T) {
	if len(Functions()) != 17 || len(FunctionNames()) != 17 || len(FunctionSpecs()) != 17 {
		t.Fatal("suite listings disagree with Table I")
	}
}

func TestPublicExperimentsRun(t *testing.T) {
	if rows := Fig1(); len(rows) != 10 {
		t.Fatalf("Fig1 stages = %d", len(rows))
	}
	rows, err := TableII()
	if err != nil || len(rows) != 2 {
		t.Fatalf("TableII: %v, %d rows", err, len(rows))
	}
	if s := rows[0].Savings(); s < 0.30 || s > 0.40 {
		t.Fatalf("ideal savings = %.3f", s)
	}
	res, err := Headline(HeadlineConfig{InvocationsPerFunction: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.EfficiencyGain < PaperEfficiencyGain*0.85 || res.EfficiencyGain > PaperEfficiencyGain*1.15 {
		t.Fatalf("gain = %.2f, paper %.1f", res.EfficiencyGain, PaperEfficiencyGain)
	}
}

func TestPublicAblations(t *testing.T) {
	res, err := AblationNoReboot(1, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup() <= 1.5 {
		t.Fatalf("no-reboot speedup = %.2f", res.Speedup())
	}
}

func TestPaperConstantsExposed(t *testing.T) {
	if PaperSBCThroughput != 200.6 || PaperVMThroughput != 211.7 {
		t.Fatal("throughput constants wrong")
	}
	if PaperMicroFaaSJoules != 5.7 || PaperConventionalJoules != 32.0 {
		t.Fatal("energy constants wrong")
	}
	if PaperPeakConventionalJoules != 16.1 || PaperEfficiencyGain != 5.6 {
		t.Fatal("efficiency constants wrong")
	}
}

func TestPublicExtensionExperiments(t *testing.T) {
	// Small configurations keep this fast; each wrapper must round-trip.
	if _, err := Fig4(Fig4Config{MaxVMs: 3, JobsPerVM: 20, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	pts5, err := Fig5(Fig5Config{MaxWorkers: 2, Seed: 1})
	if err != nil || len(pts5) != 3 {
		t.Fatalf("Fig5: %d points, %v", len(pts5), err)
	}
	rows3, err := Fig3(Fig3Config{InvocationsPerFunction: 10, Seed: 1})
	if err != nil || len(rows3) != 17 {
		t.Fatalf("Fig3: %d rows, %v", len(rows3), err)
	}
	ls, err := LoadSweep(LoadSweepConfig{Fractions: []float64{0.5}, Window: 3 * time.Minute, Seed: 1})
	if err != nil || len(ls) != 1 {
		t.Fatalf("LoadSweep: %v, %v", ls, err)
	}
	kw, err := KeepWarm(KeepWarmConfig{Windows: []time.Duration{0}, Duration: 3 * time.Minute, Seed: 1})
	if err != nil || len(kw) != 1 {
		t.Fatalf("KeepWarm: %v, %v", kw, err)
	}
	rs, err := RackScale(RackScaleConfig{SBCs: 24, Servers: 1, VMsPerServer: 12, JobsPerWorker: 3, Seed: 1})
	if err != nil || rs.SBCThroughput <= 0 {
		t.Fatalf("RackScale: %+v, %v", rs, err)
	}
	dn, err := Diurnal(DiurnalConfig{TroughPerMin: 4, PeakPerMin: 40, Day: time.Hour, Seed: 1})
	if err != nil || dn.MF.Completed == 0 {
		t.Fatalf("Diurnal: %+v, %v", dn, err)
	}
	sv, err := Sensitivity(SensitivityConfig{Trials: 2, InvocationsPerFunction: 5, Seed: 1})
	if err != nil || sv.MedianGain <= 1 {
		t.Fatalf("Sensitivity: %+v, %v", sv, err)
	}
	ab, err := AblationCryptoAccel(4, 1, 5, 1)
	if err != nil || ab.Speedup() <= 1 {
		t.Fatalf("AblationCryptoAccel: %+v, %v", ab, err)
	}
	if _, err := AblationGigE(1, 5, 1); err != nil {
		t.Fatal(err)
	}
}
