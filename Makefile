GO ?= go

# `make check` is the CI gate: vet, full build, the documentation gate,
# and the race-enabled test suite (-count=1 defeats the test cache so
# every run really runs).
.PHONY: check
check: vet build docslint race

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race -count=1 ./...

# `make docslint` fails if any exported identifier in the API packages
# lacks a doc comment, or any relative link in the top-level docs is
# broken. See cmd/docslint.
.PHONY: docslint
docslint:
	$(GO) run ./cmd/docslint

# `make bench` runs the full benchmark suite and records it as a JSON
# baseline (BENCH_pr8.json) via cmd/benchjson. `make bench-smoke` is the
# CI variant: one iteration of everything, just proving the benchmarks run.
BENCH_OUT ?= BENCH_pr8.json

.PHONY: bench
bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./... | tee .bench.out
	$(GO) run ./cmd/benchjson -label "$(BENCH_OUT)" -hardware "$$(nproc) cores" < .bench.out > $(BENCH_OUT)
	rm -f .bench.out

.PHONY: bench-smoke
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# `make bench-diff` re-runs the hot-path benchmarks and gates them against
# the committed baseline: a >20% regression in ns/op or allocs/op fails
# (cmd/benchjson -diff). CI runs this in the bench-smoke job.
BENCH_BASELINE ?= BENCH_pr8.json
# ShardedRackScale and ShardFailover are gated on allocs/op only: one op
# is a long deterministic simulation whose wall-clock tracks machine
# load, not code.
BENCH_GATED := BenchmarkLiveInvocation,BenchmarkSimulatorEventRate,BenchmarkRackScale10K,BenchmarkShardedRackScale:allocs/op,BenchmarkShardFailover:allocs/op

.PHONY: bench-diff
bench-diff:
	$(GO) test -bench '^(BenchmarkLiveInvocation|BenchmarkSimulatorEventRate|BenchmarkRackScale10K|BenchmarkShardedRackScale|BenchmarkShardFailover)$$' -benchmem -run '^$$' . | tee .bench-diff.out
	$(GO) run ./cmd/benchjson -diff $(BENCH_BASELINE) -gate $(BENCH_GATED) < .bench-diff.out
	rm -f .bench-diff.out
