GO ?= go

# `make check` is the CI gate: vet, full build, and the race-enabled test
# suite (-count=1 defeats the test cache so every run really runs).
.PHONY: check
check: vet build race

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race -count=1 ./...

.PHONY: bench
bench:
	$(GO) test -bench=. -benchmem ./...
