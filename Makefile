GO ?= go

# `make check` is the CI gate: vet, full build, the documentation gate,
# the SLO rule-file gate, and the race-enabled test suite (-count=1
# defeats the test cache so every run really runs).
.PHONY: check
check: vet build docslint slolint race

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race -count=1 ./...

# `make docslint` fails if any exported identifier in the API packages
# lacks a doc comment, or any relative link in the top-level docs is
# broken. See cmd/docslint.
.PHONY: docslint
docslint:
	$(GO) run ./cmd/docslint

# `make slolint` validates the shipped SLO rule files: structure, window
# ordering, and that every referenced metric exists in the platform's
# catalogue. See cmd/slolint.
.PHONY: slolint
slolint:
	$(GO) run ./cmd/slolint examples/slo/rules.json examples/slo/diurnal.json

# `make bench` runs the full benchmark suite and records it as a JSON
# baseline (BENCH_pr10.json) via cmd/benchjson. `make bench-smoke` is the
# CI variant: one iteration of everything, just proving the benchmarks run.
BENCH_OUT ?= BENCH_pr10.json

.PHONY: bench
bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./... | tee .bench.out
	$(GO) run ./cmd/benchjson -label "$(BENCH_OUT)" -hardware "$$(nproc) cores" < .bench.out > $(BENCH_OUT)
	rm -f .bench.out

.PHONY: bench-smoke
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# `make bench-diff` re-runs the hot-path benchmarks and gates them against
# the committed baseline: a >20% regression in ns/op or allocs/op fails
# (cmd/benchjson -diff). CI runs this in the bench-smoke job.
BENCH_BASELINE ?= BENCH_pr10.json
# ShardedRackScale and ShardFailover are gated on allocs/op only: one op
# is a long deterministic simulation whose wall-clock tracks machine
# load, not code.
BENCH_GATED := BenchmarkLiveInvocation,BenchmarkSimulatorEventRate,BenchmarkRackScale10K,BenchmarkShardedRackScale:allocs/op,BenchmarkShardFailover:allocs/op,BenchmarkTSDBScrape:allocs/op,BenchmarkForecastTick:allocs/op

.PHONY: bench-diff
bench-diff:
	$(GO) test -bench '^(BenchmarkLiveInvocation|BenchmarkSimulatorEventRate|BenchmarkRackScale10K|BenchmarkShardedRackScale|BenchmarkShardFailover|BenchmarkTSDBScrape|BenchmarkForecastTick)$$' -benchmem -run '^$$' . | tee .bench-diff.out
	$(GO) run ./cmd/benchjson -diff $(BENCH_BASELINE) -gate $(BENCH_GATED) < .bench-diff.out
	rm -f .bench-diff.out
