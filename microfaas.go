// Package microfaas is a from-scratch Go implementation of MicroFaaS, the
// energy-efficient bare-metal serverless platform of Byrne et al. (DATE
// 2022), together with everything needed to reproduce the paper's
// evaluation: the worker-OS boot model, the 17-function workload suite and
// its four backing services (Redis/PostgreSQL/MinIO/Kafka substitutes),
// the cluster orchestration platform, a discrete-event cluster simulator
// calibrated to the paper's published numbers, the Cui-style TCO model,
// and an HTTP FaaS gateway.
//
// This package is the public facade: it re-exports the pieces a downstream
// user composes. Three entry points cover most uses:
//
//   - StartLiveCluster boots a real in-process MicroFaaS deployment —
//     four backing services, N TCP workers executing real Go functions,
//     and the orchestration platform — ready for Submit/Quiesce or for an
//     HTTP gateway via ServeGateway.
//   - NewMicroFaaSSim / NewConventionalSim build the paper's two
//     evaluation clusters on a deterministic discrete-event simulator.
//   - The Fig*/Headline/TableII functions regenerate the paper's figures
//     and tables (see EXPERIMENTS.md for measured-vs-paper values).
package microfaas

import (
	"io"
	"time"

	"microfaas/internal/cluster"
	"microfaas/internal/core"
	"microfaas/internal/experiments"
	"microfaas/internal/gateway"
	"microfaas/internal/model"
	"microfaas/internal/node"
	"microfaas/internal/power"
	"microfaas/internal/powermgr"
	"microfaas/internal/shard"
	"microfaas/internal/tco"
	"microfaas/internal/telemetry"
	"microfaas/internal/trace"
	"microfaas/internal/tracing"
	"microfaas/internal/workload"
)

// --- Live clusters ---

// LiveOptions configures StartLiveCluster.
type LiveOptions = cluster.LiveOptions

// LiveCluster is a running in-process MicroFaaS deployment.
type LiveCluster = cluster.Live

// StartLiveCluster boots backing services, workers, and the orchestration
// platform on loopback TCP. Always Close the returned cluster.
func StartLiveCluster(opts LiveOptions) (*LiveCluster, error) {
	return cluster.StartLive(opts)
}

// Gateway is an HTTP FaaS endpoint over a cluster's orchestrator.
type Gateway = gateway.Server

// GatewayOptions configures a gateway beyond its orchestrator (timeout,
// sim/live mode label, telemetry backing /metrics and /events).
type GatewayOptions = gateway.Options

// ServeGateway exposes a live cluster over HTTP on addr (e.g.
// "127.0.0.1:8080"); it returns the gateway and its bound address. The
// cluster's telemetry (if enabled) backs the gateway's /metrics and
// /events routes automatically.
func ServeGateway(l *LiveCluster, addr string, timeout time.Duration) (*Gateway, string, error) {
	gw, err := gateway.NewWithOptions(l.Orch, gateway.Options{
		Timeout:   timeout,
		Mode:      "live",
		Telemetry: l.Telemetry,
	})
	if err != nil {
		return nil, "", err
	}
	bound, err := gw.Listen(addr)
	if err != nil {
		return nil, "", err
	}
	return gw, bound, nil
}

// NewGateway builds an HTTP gateway over any orchestrator — live or
// simulated — without binding it to a port; call Listen to bind, or
// mount Handler on a server of your own.
func NewGateway(orch *Orchestrator, opts GatewayOptions) (*Gateway, error) {
	return gateway.NewWithOptions(orch, opts)
}

// --- Sharded control plane ---

// ShardPlane is the consistent-hash load-balancer tier in front of N
// orchestrator shards: it routes invocations by key (bounded-load
// hashing), rebalances ring weights, and steals queued work from
// backlogged shards. See ARCHITECTURE.md's shard-tier section.
type ShardPlane = shard.Plane

// ShardPlaneConfig tunes a ShardPlane (virtual nodes, bounded-load
// factor, stealing, rebalancing).
type ShardPlaneConfig = shard.Config

// ShardStealConfig and ShardRebalanceConfig tune the plane's capacity
// aggregator.
type (
	ShardStealConfig     = shard.StealConfig
	ShardRebalanceConfig = shard.RebalanceConfig
)

// ShardStatus is one shard's capacity snapshot (gateway /shards,
// faasctl shards).
type ShardStatus = shard.ShardStatus

// ShardMembershipConfig enables the plane's health checker and dynamic
// membership: probed shards move up → suspect → dead as heartbeats go
// missing, dead shards drain their queued work into survivors, and
// recovered shards rejoin the ring after a streak of healthy probes.
type ShardMembershipConfig = shard.MembershipConfig

// ShardState is a shard's membership state as the health checker sees
// it: ShardUp, ShardSuspect, or ShardDead.
type ShardState = shard.ShardState

// The membership states a ShardPlane reports per shard.
const (
	ShardUp      = shard.ShardUp
	ShardSuspect = shard.ShardSuspect
	ShardDead    = shard.ShardDead
)

// Runtime is the clock abstraction orchestrators and the shard plane
// run on — core.SimRuntime in simulations, core.NewWallRuntime() live.
type Runtime = core.Runtime

// NewShardPlane builds the load-balancer tier over orchestrators that
// each own a disjoint worker partition and job-id space (see
// LiveOptions.ShardLabel / LiveOptions.JobIDBase). The runtime must be
// the clock the shards run on.
func NewShardPlane(rt Runtime, shards []*Orchestrator, cfg ShardPlaneConfig) (*ShardPlane, error) {
	return shard.NewPlane(rt, shards, cfg)
}

// NewShardedGateway fronts a whole shard plane with one HTTP gateway:
// /invoke routes through the consistent-hash tier and the read
// endpoints (/workers, /stats, /power, /metrics, /shards) merge every
// shard's view.
func NewShardedGateway(plane *ShardPlane, opts GatewayOptions) (*Gateway, error) {
	return gateway.NewSharded(plane, opts)
}

// ShardedSimCluster is a simulated MicroFaaS deployment split into N
// control-plane shards behind a ShardPlane, all on one virtual clock.
type ShardedSimCluster = cluster.ShardedSim

// ShardedSimStats summarizes a drained sharded run.
type ShardedSimStats = cluster.ShardedStats

// NewShardedMicroFaaSSim builds shards × workersPerShard SBCs split
// into that many control-plane shards behind a load-balancer tier.
func NewShardedMicroFaaSSim(shards, workersPerShard int, opts SimOptions, scfg ShardPlaneConfig) (*ShardedSimCluster, error) {
	return cluster.NewShardedMicroFaaSSim(shards, workersPerShard, opts, scfg)
}

// --- Telemetry ---

// Telemetry bundles a cluster's metrics registry and lifecycle-event
// stream; pass one instance via LiveOptions.Telemetry or
// SimOptions.Telemetry and serve it through a Gateway's /metrics and
// /events routes. Nil disables instrumentation with zero overhead.
type Telemetry = telemetry.Telemetry

// NewTelemetry returns a telemetry bundle with default settings.
func NewTelemetry() *Telemetry { return telemetry.New() }

// MetricSamples is a parsed Prometheus text exposition, as returned by
// ParseMetrics — convenient for asserting on or post-processing a
// /metrics scrape without a Prometheus dependency.
type MetricSamples = telemetry.Samples

// ParseMetrics parses a Prometheus text-format exposition.
func ParseMetrics(r io.Reader) (MetricSamples, error) { return telemetry.ParseText(r) }

// InvocationEvent is one entry of the gateway's /events stream.
type InvocationEvent = telemetry.Event

// --- Tracing ---

// Tracer records per-invocation lifecycle spans; pass one via
// LiveOptions.Tracer or SimOptions.Tracer and read it back through a
// Gateway's /traces routes or directly. Nil disables tracing with zero
// overhead — seeded sim runs are bit-identical either way.
type Tracer = tracing.Tracer

// TracerConfig tunes a Tracer's sampling and retention bounds.
type TracerConfig = tracing.Config

// InvocationTrace is one committed trace: a root invocation span plus
// its lifecycle child spans.
type InvocationTrace = tracing.Trace

// TraceSpan is one span of an InvocationTrace.
type TraceSpan = tracing.Span

// TraceSummary is a trace's critical-path breakdown: per-phase latency
// and energy that sum to the invocation's end-to-end totals.
type TraceSummary = tracing.Summary

// NewTracer returns a sample-everything tracer with default bounds.
func NewTracer() *Tracer { return tracing.New() }

// NewTracerWithConfig returns a tracer with explicit sampling/bounds.
func NewTracerWithConfig(cfg TracerConfig) *Tracer { return tracing.NewWithConfig(cfg) }

// SummarizeTrace computes a trace's critical-path phase breakdown.
func SummarizeTrace(tr InvocationTrace) TraceSummary { return tracing.Summarize(tr) }

// WriteChromeTrace dumps traces in Chrome trace_event format, loadable
// in chrome://tracing or Perfetto.
func WriteChromeTrace(w io.Writer, traces []InvocationTrace) error {
	return tracing.WriteChromeTrace(w, traces)
}

// SBCPowerModel maps an SBC worker's operating state to its power draw;
// PowerState enumerates the states. Together they let user code derive
// joules from trace records independently of the metered counters (see
// examples/faulttolerance for the cross-check).
type (
	SBCPowerModel = power.SBCModel
	PowerState    = power.State
)

// Worker operating states for SBCPowerModel.Power.
const (
	PowerOff     = power.Off
	PowerBooting = power.Booting
	PowerIdle    = power.Idle
	PowerBusy    = power.Busy
)

// DefaultSBCPowerModel returns the BeagleBone Black draw constants from
// the paper's Appendix.
func DefaultSBCPowerModel() SBCPowerModel { return power.DefaultSBCModel() }

// --- Dynamic power management ---

// PowerPolicy tunes the dynamic power manager: idle timeout before a
// worker is power-gated, minimum-up hysteresis, and an optional cluster
// watt budget. Pass one via LiveOptions.Power or SimOptions.Power to turn
// power management on; leave nil for the static per-job power cycle.
type PowerPolicy = powermgr.Policy

// PowerManager owns worker power states when a PowerPolicy is set: it
// wakes powered-down workers on demand, powers idle ones down, and
// enforces the watt budget. Reach a running cluster's manager through
// LiveCluster.PowerMgr / SimCluster.PowerMgr or a gateway's /power route.
type PowerManager = powermgr.Manager

// PowerStatus is a PowerManager snapshot: per-node power states, the
// active cap, and cap-parked wakes.
type PowerStatus = powermgr.Status

// AssignPolicy selects how the orchestrator places jobs on workers.
type AssignPolicy = core.AssignPolicy

// Assignment policies for Orchestrator configuration. AssignEnergyAware
// pairs with a PowerPolicy: it packs load onto powered workers so idle
// ones can be power-gated.
const (
	AssignRoundRobin  = core.AssignRoundRobin
	AssignRandom      = core.AssignRandom
	AssignLeastLoaded = core.AssignLeastLoaded
	AssignEnergyAware = core.AssignEnergyAware
)

// ParseAssignPolicy maps a policy name ("round-robin", "random",
// "least-loaded", "energy-aware") to its AssignPolicy.
func ParseAssignPolicy(s string) (AssignPolicy, error) { return core.ParsePolicy(s) }

// --- Simulated clusters ---

// SimOptions configures a simulated cluster.
type SimOptions = cluster.SimConfig

// SimCluster is a discrete-event MicroFaaS or conventional cluster.
type SimCluster = cluster.Sim

// SimStats summarizes a drained simulation run.
type SimStats = cluster.SuiteStats

// NewMicroFaaSSim builds an n-SBC MicroFaaS cluster on the simulator.
func NewMicroFaaSSim(n int, opts SimOptions) (*SimCluster, error) {
	return cluster.NewMicroFaaSSim(n, opts)
}

// NewConventionalSim builds an n-VM conventional cluster (one rack server)
// on the simulator.
func NewConventionalSim(n int, opts SimOptions) (*SimCluster, error) {
	return cluster.NewConventionalSim(n, opts)
}

// --- Workloads ---

// WorkloadFunction is one Table-I workload function.
type WorkloadFunction = workload.Function

// WorkloadEnv carries backing-service addresses for direct invocation.
type WorkloadEnv = workload.Env

// Functions returns the 17-function workload suite.
func Functions() []WorkloadFunction { return workload.All() }

// FunctionNames returns the suite's sorted names.
func FunctionNames() []string { return workload.Names() }

// FunctionSpec is a function's calibrated performance model.
type FunctionSpec = model.FunctionSpec

// FunctionSpecs returns the calibrated Table-I performance models.
func FunctionSpecs() []FunctionSpec { return model.Functions() }

// Record is one collected invocation; FunctionStats a per-function summary.
type (
	Record        = trace.Record
	FunctionStats = trace.FunctionStats
)

// Orchestrator is the cluster orchestration platform (the OP of Sec IV-D).
type Orchestrator = core.Orchestrator

// InvocationResult is one completed invocation as delivered to
// Orchestrator.SubmitAsync callbacks.
type InvocationResult = core.Result

// WorkerHealth is one worker's failure-tracking snapshot, as returned by
// Orchestrator.Health: breaker state, failure counters, queue depth.
type WorkerHealth = core.WorkerHealth

// BreakerState is a worker circuit-breaker state (see WorkerHealth.State).
type BreakerState = core.BreakerState

// Circuit-breaker states as reported in WorkerHealth.
const (
	BreakerClosed   = core.BreakerClosed
	BreakerOpen     = core.BreakerOpen
	BreakerHalfOpen = core.BreakerHalfOpen
)

// FaultSpec injects worker-level faults (hang / error / slow, seeded) into
// live TCP workers; pass it via LiveOptions.Faults to exercise the failure
// path end-to-end.
type FaultSpec = node.FaultSpec

// --- Paper experiments ---

// Fig1Row, Fig3Row, Fig4Result, Fig5Point and friends are the structured
// results of the paper's figures; see internal/experiments for details.
type (
	Fig1Row           = experiments.Fig1Row
	Fig3Config        = experiments.Fig3Config
	Fig3Row           = experiments.Fig3Row
	Fig4Config        = experiments.Fig4Config
	Fig4Result        = experiments.Fig4Result
	Fig5Config        = experiments.Fig5Config
	Fig5Point         = experiments.Fig5Point
	HeadlineConfig    = experiments.HeadlineConfig
	HeadlineResult    = experiments.HeadlineResult
	AblationResult    = experiments.AblationResult
	TCOComparison     = tco.Comparison
	RackScaleConfig   = experiments.RackScaleConfig
	RackScaleResult   = experiments.RackScaleResult
	LoadSweepConfig   = experiments.LoadSweepConfig
	LoadSweepPoint    = experiments.LoadSweepPoint
	KeepWarmConfig    = experiments.KeepWarmConfig
	KeepWarmPoint     = experiments.KeepWarmPoint
	DiurnalConfig     = experiments.DiurnalConfig
	DiurnalResult     = experiments.DiurnalResult
	PowerMgmtConfig   = experiments.PowerMgmtConfig
	PowerMgmtResult   = experiments.PowerMgmtResult
	SensitivityConfig = experiments.SensitivityConfig
	SensitivityResult = experiments.SensitivityResult
	BootImpactConfig  = experiments.BootImpactConfig
	BootImpactRow     = experiments.BootImpactRow
	ShardedRackConfig = experiments.ShardedRackConfig
	ShardedRackResult = experiments.ShardedRackResult
	ShardedArm        = experiments.ShardedArm
)

// Fig1 returns the worker-OS boot-time development timeline.
func Fig1() []Fig1Row { return experiments.Fig1() }

// Fig3 measures the per-function runtime split on both clusters.
func Fig3(cfg Fig3Config) ([]Fig3Row, error) { return experiments.Fig3(cfg) }

// Fig4 sweeps VM count on the rack server, reporting throughput and
// energy per function.
func Fig4(cfg Fig4Config) (Fig4Result, error) { return experiments.Fig4(cfg) }

// Fig5 measures cluster power versus active worker count.
func Fig5(cfg Fig5Config) ([]Fig5Point, error) { return experiments.Fig5(cfg) }

// Headline reproduces Sec V's throughput-matched headline comparison.
func Headline(cfg HeadlineConfig) (HeadlineResult, error) { return experiments.Headline(cfg) }

// TableII computes the 5-year TCO comparison under the paper's Appendix
// assumptions.
func TableII() ([]TCOComparison, error) { return tco.TableII() }

// RackScale simulates the Table II racks (989 SBCs vs 41 servers) and
// measures their throughput and power.
func RackScale(cfg RackScaleConfig) (RackScaleResult, error) { return experiments.RackScale(cfg) }

// ShardedRack measures the sharded control plane at full scale: 64
// shards × 1100 SBCs behind the consistent-hash tier, four arms
// isolating bounded-load routing and cross-shard work stealing.
func ShardedRack(cfg ShardedRackConfig) (ShardedRackResult, error) {
	return experiments.ShardedRack(cfg)
}

// LoadSweep measures latency and energy per function on both clusters
// under an open arrival process at fractions of matched capacity.
func LoadSweep(cfg LoadSweepConfig) ([]LoadSweepPoint, error) { return experiments.LoadSweep(cfg) }

// KeepWarm prices the warm-pool trade the paper refuses: latency and
// energy per function under several keep-warm windows.
func KeepWarm(cfg KeepWarmConfig) ([]KeepWarmPoint, error) { return experiments.KeepWarm(cfg) }

// Diurnal replays a synthetic day into both clusters and compares their
// daily energy bills.
func Diurnal(cfg DiurnalConfig) (DiurnalResult, error) { return experiments.Diurnal(cfg) }

// PowerMgmt compares the dynamic power manager against the per-job power
// cycle and an always-on baseline across utilization levels.
func PowerMgmt(cfg PowerMgmtConfig) (PowerMgmtResult, error) { return experiments.PowerMgmt(cfg) }

// Sensitivity re-measures the headline energy comparison under random
// perturbations of the calibrated service times.
func Sensitivity(cfg SensitivityConfig) (SensitivityResult, error) {
	return experiments.Sensitivity(cfg)
}

// BootImpact measures the cluster-level value of each Fig 1 worker-OS
// boot optimization.
func BootImpact(cfg BootImpactConfig) ([]BootImpactRow, error) {
	return experiments.BootImpact(cfg)
}

// AblationCryptoAccel, AblationGigE, and AblationNoReboot quantify the
// design variations the paper's discussion motivates. parallel bounds the
// worker pool running the baseline and modified arms (<=0 = GOMAXPROCS,
// 1 = serial; results are identical at any value).
func AblationCryptoAccel(speedup float64, seed int64, invocations, parallel int) (AblationResult, error) {
	return experiments.AblationCryptoAccel(speedup, seed, invocations, parallel)
}

// AblationGigE upgrades the SBC NICs to Gigabit Ethernet.
func AblationGigE(seed int64, invocations, parallel int) (AblationResult, error) {
	return experiments.AblationGigE(seed, invocations, parallel)
}

// AblationNoReboot disables the reboot between jobs.
func AblationNoReboot(seed int64, invocations, parallel int) (AblationResult, error) {
	return experiments.AblationNoReboot(seed, invocations, parallel)
}

// RunParallel fans n independent tasks across a bounded pool of workers
// goroutines and returns results in index order (see
// internal/experiments/runner.go for the determinism contract).
func RunParallel[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return experiments.RunParallel(workers, n, fn)
}

// DeriveSeed maps a base seed and task index to a decorrelated per-task
// seed (splitmix64).
func DeriveSeed(base int64, i int) int64 { return experiments.DeriveSeed(base, i) }

// --- Paper constants (Sec V) ---

// Published aggregates, re-exported for comparisons in user code.
const (
	PaperSBCThroughput          = model.PaperSBCThroughput
	PaperVMThroughput           = model.PaperVMThroughput
	PaperMicroFaaSJoules        = model.PaperMicroFaaSJoulesPerFunc
	PaperConventionalJoules     = model.PaperConventionalJoulesPerFunc
	PaperPeakConventionalJoules = model.PaperPeakConventionalJoulesPerFunc
	PaperEfficiencyGain         = model.PaperEnergyEfficiencyGain
)
